//! The tentpole's acceptance proof: a cache hit (page-table lookup +
//! pin + unpin) performs **zero mutex/rwlock acquisitions**.
//!
//! Every lock in the workspace routes through the vendored
//! `parking_lot` shim, which keeps a thread-local census of successful
//! acquisitions (`parking_lot::thread_acquisitions`). The test warms a
//! pool, then drives a window of guaranteed hits on the same thread and
//! asserts the thread's acquisition count did not move — covering the
//! page-table shard `RwLock` (optimistic probe instead), the descriptor
//! latch (pin/unpin are header CAS loops), and, by construction, the
//! policy/miss `InstrumentedLock`s (BP-Wrapper defers bookkeeping below
//! its batch threshold). `PinnedPage::read` still takes the frame's
//! data mutex, so the window pins and drops without reading — the
//! hit *path* is lock-free; content access is a separate latch by
//! design (page I/O can't be seqlocked).
//!
//! A second test pins through the seed's mutex-based descriptor
//! (`MutexDesc`, kept as the benchmark baseline) and asserts the same
//! census *does* see its two acquisitions per pin/unpin pair — proving
//! the instrument can't silently go blind.

#![cfg(not(feature = "dst"))]

use std::sync::Arc;

use bpw_bufferpool::{BufferPool, MutexDesc, SimDisk, WrappedManager};
use bpw_core::WrapperConfig;
use bpw_replacement::TwoQ;

const FRAMES: usize = 64;
const HITS: u64 = 1_000;

fn wrapped_pool() -> BufferPool<WrappedManager<TwoQ>> {
    // Queue sized so the measured window (HITS accesses) stays below
    // the batch threshold: no commit, publish, or blocking Lock() can
    // fire mid-window. The flush at session drop happens after the
    // measurement.
    let cfg = WrapperConfig {
        queue_size: 2 * HITS as usize,
        batch_threshold: 2 * HITS as usize,
        ..WrapperConfig::default()
    };
    BufferPool::new(
        FRAMES,
        128,
        WrappedManager::new(TwoQ::new(FRAMES), cfg),
        Arc::new(SimDisk::instant()),
    )
}

#[test]
fn cache_hit_takes_zero_lock_acquisitions() {
    let pool = wrapped_pool();
    let mut session = pool.session();
    // Warm: every page resident, all misses done.
    for page in 0..8u64 {
        drop(session.fetch(page).expect("instant disk"));
    }
    let hits_before = pool.stats().hits.load(std::sync::atomic::Ordering::Relaxed);

    let base = parking_lot::thread_acquisitions();
    for i in 0..HITS {
        let pin = session.fetch(i % 8).expect("resident page cannot error");
        drop(pin);
    }
    let taken = parking_lot::thread_acquisitions() - base;

    assert_eq!(
        pool.stats().hits.load(std::sync::atomic::Ordering::Relaxed) - hits_before,
        HITS,
        "window must have been all hits"
    );
    assert_eq!(
        taken, 0,
        "a cache hit must perform zero mutex/rwlock acquisitions, \
         but {HITS} hits took {taken}"
    );
    assert_eq!(
        pool.page_table_fallback_reads(),
        0,
        "quiescent lookups must never leave the optimistic path"
    );
    assert_eq!(
        pool.stats()
            .pin_cas_retries
            .load(std::sync::atomic::Ordering::Relaxed),
        0,
        "single-threaded pins must land on the first CAS"
    );
}

#[test]
fn concurrent_hits_still_take_zero_locks() {
    // Same proof under real contention: 8 threads hammering the same
    // hot pages. Pins may need CAS retries (that's the lock-free
    // slow-down mode) but no thread may ever fall back to a lock.
    let pool = wrapped_pool();
    {
        let mut warm = pool.session();
        for page in 0..8u64 {
            drop(warm.fetch(page).expect("instant disk"));
        }
    }
    std::thread::scope(|sc| {
        for t in 0..8u64 {
            let pool = &pool;
            sc.spawn(move || {
                let mut session = pool.session();
                let base = parking_lot::thread_acquisitions();
                for i in 0..HITS {
                    drop(session.fetch((i + t) % 8).expect("resident"));
                }
                let taken = parking_lot::thread_acquisitions() - base;
                assert_eq!(
                    taken, 0,
                    "thread {t}: contended hits took {taken} lock acquisitions"
                );
            });
        }
    });
}

#[test]
fn adaptive_pool_hits_stay_lock_free() {
    // The adaptive layer must not tax the hit path: the swap epoch is a
    // plain atomic store/recheck pair, and the sample tap is a lossy
    // lock-free ring. Same census, with both installed and the tap
    // sampling every single access (period 1, the worst case).
    let cfg = WrapperConfig {
        queue_size: 2 * HITS as usize,
        batch_threshold: 2 * HITS as usize,
        ..WrapperConfig::default()
    };
    let tap = Arc::new(bpw_replacement::SampleTap::new(1, 4096));
    let pool = BufferPool::new(
        FRAMES,
        128,
        bpw_bufferpool::SwapManager::new(Box::new(WrappedManager::new(TwoQ::new(FRAMES), cfg))),
        Arc::new(SimDisk::instant()),
    )
    .with_sample_tap(Arc::clone(&tap));
    // Session creation registers the epoch cell (locked, once) — keep
    // it outside the measured window, like the page-table warmup.
    let mut session = pool.session();
    for page in 0..8u64 {
        drop(session.fetch(page).expect("instant disk"));
    }

    let base = parking_lot::thread_acquisitions();
    for i in 0..HITS {
        drop(session.fetch(i % 8).expect("resident page cannot error"));
    }
    let taken = parking_lot::thread_acquisitions() - base;
    assert_eq!(
        taken, 0,
        "adaptive-pool hits must stay lock-free, but {HITS} hits took {taken}"
    );
    assert!(
        tap.pushed() >= HITS,
        "the tap must have sampled the window without locking"
    );
}

#[test]
fn mutex_baseline_is_visible_to_the_census() {
    // Control experiment: the seed's mutex descriptor pays one lock per
    // pin and another per unpin, and the census sees both — so the
    // zero-acquisition assertions above cannot pass vacuously.
    let desc = MutexDesc::new();
    {
        let mut s = desc.lock();
        s.tag = 5;
        s.valid = true;
    }
    let base = parking_lot::thread_acquisitions();
    assert!(desc.try_pin(5));
    desc.unpin();
    assert_eq!(
        parking_lot::thread_acquisitions() - base,
        2,
        "mutex descriptor must cost exactly two acquisitions per hit"
    );
}
