//! Deterministic-simulation coverage for replacement-manager hot-swap
//! (DESIGN.md §18): swaps race pinned pages, misses, invalidations, and
//! combining drains, and under every schedule the swap epoch must be
//! well-formed (no access applied to a retired manager), residency must
//! be conserved (`free + resident == frames`), and every recorded hit
//! must be committed exactly once — published batches stranded on a
//! retired manager's board are the classic way to lose advice, which is
//! exactly what the `dst_mutation = "swap_no_drain"` mutant reintroduces
//! and this suite must catch.

#![cfg(feature = "dst")]

use std::sync::Arc;

use bpw_bufferpool::{
    BufferPool, InvalidateOutcome, ReplacementManager, SimDisk, SwapManager, WrappedManager,
};
use bpw_core::WrapperConfig;
use bpw_dst::check::{check_free_list, check_hit_conservation, check_swap_epoch};
use bpw_dst::{Op, Sim};
use bpw_replacement::{Lru, TwoQ};

const FRAMES: usize = 6;
/// Swaps the storm's swapper task performs per run.
const SWAPS: u64 = 2;

fn wrapper_cfg() -> WrapperConfig {
    WrapperConfig::default()
        .with_queue_size(2)
        .with_batch_threshold(1)
        .with_combining(true)
}

fn wrapped_lru(frames: usize) -> Box<dyn ReplacementManager> {
    Box::new(WrappedManager::new(Lru::new(frames), wrapper_cfg()))
}

fn wrapped_two_q(frames: usize) -> Box<dyn ReplacementManager> {
    Box::new(WrappedManager::new(TwoQ::new(frames), wrapper_cfg()))
}

type Pool = BufferPool<SwapManager>;

fn make_pool() -> Arc<Pool> {
    Arc::new(BufferPool::new(
        FRAMES,
        64,
        SwapManager::new(wrapped_lru(FRAMES)),
        Arc::new(SimDisk::instant()),
    ))
}

/// Retry `invalidate(page)` through transient `Busy` answers.
fn invalidate_converging(pool: &Pool, page: u64) -> InvalidateOutcome {
    loop {
        let out = pool.invalidate(page);
        if !out.is_retryable() {
            return out;
        }
        bpw_dst::yield_now();
    }
}

#[test]
fn dst_swap_under_storm_preserves_invariants() {
    let mut busy_seen = 0u64;
    let mut enters_seen = 0u64;
    let mut records_seen = 0u64;
    for (i, seed) in bpw_dst::seed_corpus(0x5FAB, 24).iter().enumerate() {
        let pool = make_pool();
        let mut sim = if i % 4 == 1 {
            Sim::new(*seed).with_pct(2)
        } else {
            Sim::new(*seed)
        };
        {
            // Pinner: holds a page pinned across yields so invalidation
            // meets `Busy`, then keeps touching the hot set.
            let pool = Arc::clone(&pool);
            sim.spawn(move || {
                let mut s = pool.session();
                let p = s.fetch(0).unwrap();
                for _ in 0..4 {
                    bpw_dst::yield_now();
                }
                drop(p);
                for k in 0..4u64 {
                    drop(s.fetch(k % 3).unwrap());
                }
            });
        }
        for t in 0..2u64 {
            // Fetchers: a working set slightly over capacity, so hits,
            // misses, and evictions all race the swaps.
            let pool = Arc::clone(&pool);
            sim.spawn(move || {
                let mut s = pool.session();
                for k in 0..8u64 {
                    drop(s.fetch((k + 3 * t) % 8).unwrap());
                }
            });
        }
        {
            // Invalidator: must converge to a definitive outcome even
            // with a swap mid-flight (the swapper holds every miss-shard
            // lock, so invalidation simply waits its turn).
            let pool = Arc::clone(&pool);
            sim.spawn(move || {
                let out = invalidate_converging(&pool, 0);
                assert!(
                    matches!(
                        out,
                        InvalidateOutcome::Invalidated | InvalidateOutcome::NotResident
                    ),
                    "retry loop ended on a transient outcome: {out:?}"
                );
            });
        }
        {
            // Swapper: hot-swaps the manager twice under the storm.
            let pool = Arc::clone(&pool);
            sim.spawn(move || {
                for s in 0..SWAPS {
                    for _ in 0..3 {
                        bpw_dst::yield_now();
                    }
                    let next = if s % 2 == 0 {
                        wrapped_two_q(FRAMES)
                    } else {
                        wrapped_lru(FRAMES)
                    };
                    let report = pool.swap_manager(next).expect("SwapManager always swaps");
                    assert_eq!(report.generation, s + 1);
                }
            });
        }
        let out = sim.run();
        out.check(|o| {
            assert_eq!(pool.free_frames() + pool.resident_count(), FRAMES);
            pool.check_mapping_invariants();
            let fr = check_free_list(&o.history, FRAMES as u32, true);
            assert_eq!(fr.free_at_end as usize, pool.free_frames());
            let ep = check_swap_epoch(&o.history);
            assert_eq!(ep.installs, SWAPS);
            assert_eq!(ep.retires, SWAPS);
            assert_eq!(ep.max_gen, SWAPS);
            let cons = check_hit_conservation(&o.history);
            assert_eq!(cons.records, cons.commits);
            enters_seen += ep.enters;
            records_seen += cons.records;
        });
        assert_eq!(pool.manager().swaps(), SWAPS);
        for e in &out.history {
            if let Op::Invalidate { outcome: 2, .. } = e.op {
                busy_seen += 1;
            }
        }
    }
    // Anti-vacuity: the corpus must actually exercise epoch entries,
    // recorded advice, and the contended invalidate path.
    assert!(
        enters_seen > 0,
        "no schedule ever entered the epoch; vacuous"
    );
    assert!(
        records_seen > 0,
        "no schedule ever recorded advice; vacuous"
    );
    assert!(busy_seen > 0, "no schedule ever answered Busy; vacuous");
}

/// The dedicated mutant target: a batch is *published* to the combining
/// board (not just queued) when the swap lands, so the coordinator's
/// retirement drain is the only thing standing between that advice and
/// oblivion. Normal build: drained, replayed, conserved. With
/// `RUSTFLAGS='--cfg dst_mutation="swap_no_drain"'` the drain is
/// skipped and `check_hit_conservation` must panic.
#[test]
fn dst_swap_drain_recovers_published_advice() {
    let wrapped = Arc::new(WrappedManager::new(
        Lru::new(4),
        WrapperConfig::default()
            .with_queue_size(2)
            .with_batch_threshold(2)
            .with_combining(true),
    ));
    let mgr = Arc::new(SwapManager::new(Box::new(Arc::clone(&wrapped))));
    let mut sim = Sim::new(0xD12A);
    {
        let wrapped = Arc::clone(&wrapped);
        let mgr = Arc::clone(&mgr);
        sim.spawn(move || {
            let mut h = mgr.handle();
            for i in 0..4u64 {
                h.on_miss(i, Some(i as u32), &mut |_| true);
            }
            // Fill the queue to threshold while *holding* the wrapper
            // lock, so the commit attempt's try-lock fails and the batch
            // is published to the board instead of applied.
            wrapped.wrapper().with_locked(|_| {
                h.on_hit(0, 0);
                h.on_hit(1, 1);
            });
            // Swap with the batch still on the old board. Retirement
            // must drain it into the successor.
            mgr.swap(wrapped_lru(4));
            drop(h);
        });
    }
    let out = sim.run();
    out.check(|o| {
        let cons = check_hit_conservation(&o.history);
        assert!(cons.records >= 2, "the batch was never published; vacuous");
        assert_eq!(cons.records, cons.commits);
    });
    #[cfg(not(dst_mutation = "swap_no_drain"))]
    assert_eq!(mgr.advice_recovered(), 2);
}

#[test]
fn dst_adaptive_same_seed_same_outcome() {
    // Replay determinism for the raciest scenario: hits and a swap.
    let seed = 0x5FAB_5EEDu64;
    let run = || {
        let pool = make_pool();
        let mut sim = Sim::new(seed);
        {
            let pool = Arc::clone(&pool);
            sim.spawn(move || {
                let mut s = pool.session();
                for k in 0..6u64 {
                    drop(s.fetch(k % 4).unwrap());
                }
            });
        }
        {
            let pool = Arc::clone(&pool);
            sim.spawn(move || {
                let _ = pool.swap_manager(wrapped_two_q(FRAMES));
            });
        }
        sim.run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.history, b.history);
}
