//! Deterministic-simulation tests for the striped lock-free free list.
//!
//! Every head load, `next` read, and CAS in [`StripedFreeList`] is a
//! schedule point under the dst harness, so the window where ABA lives
//! — between reading a head word and CASing it — is explorable. The
//! free-list checker replays the recorded pop/push history and panics
//! on a double allocation (the classic untagged-Treiber failure) or a
//! lost frame.

#![cfg(feature = "dst")]

use std::sync::Arc;

use bpw_bufferpool::StripedFreeList;
use bpw_dst::check::check_free_list;
use bpw_dst::{splitmix64, RunOutcome, Sim};

/// Random churn: `tasks` virtual threads pop one or two frames, hold
/// them across a yield, and push them back (sometimes cold). Every
/// frame is owned between pop and push, so the checker must never see
/// a frame popped twice without an intervening push.
fn run_churn(
    seed: u64,
    pct: bool,
    frames: usize,
    stripes: usize,
    tasks: u64,
) -> (RunOutcome, Arc<StripedFreeList>) {
    let fl = Arc::new(StripedFreeList::new(frames, stripes));
    let mut sim = if pct {
        Sim::new(seed).with_pct(3)
    } else {
        Sim::new(seed)
    };
    for t in 0..tasks {
        let fl = Arc::clone(&fl);
        sim.spawn(move || {
            let mut rng = splitmix64(seed ^ (t + 1).wrapping_mul(0xA5A5_5A5A));
            let mut held: Vec<u32> = Vec::new();
            for _ in 0..8 {
                rng = splitmix64(rng);
                if let Some(f) = fl.pop(t as usize) {
                    held.push(f);
                }
                if rng % 2 == 0 {
                    if let Some(f) = fl.pop(t as usize + 1) {
                        held.push(f);
                    }
                }
                bpw_dst::yield_now();
                while let Some(f) = held.pop() {
                    if rng % 5 == 0 {
                        fl.push_cold(f);
                    } else {
                        fl.push(t as usize, f);
                    }
                }
            }
        });
    }
    (sim.run(), fl)
}

#[test]
fn dst_free_list_churn_conserves_frames() {
    let mut pops = 0;
    let mut cold = 0;
    for (i, seed) in bpw_dst::seed_corpus(0xF4EE, 40).iter().enumerate() {
        let frames = 4;
        let stripes = 1 + i % 2; // alternate single-stripe and striped
        let (out, fl) = run_churn(*seed, i % 4 == 2, frames, stripes, 3);
        out.expect_clean();
        out.check(|o| {
            let report = check_free_list(&o.history, frames as u32, true);
            assert_eq!(
                report.free_at_end, frames as u32,
                "every frame must be back on the list when all tasks finish"
            );
            pops += report.pops;
            cold += report.cold_pushes;
            assert_eq!(
                fl.len(),
                frames,
                "live count disagrees with the replayed history"
            );
            // Post-run drain on the main thread: frames must be unique.
            let mut seen = std::collections::HashSet::new();
            while let Some(f) = fl.pop(0) {
                assert!(seen.insert(f), "duplicate frame {f} after churn");
                assert!(seen.len() <= frames, "list yields more frames than exist");
            }
            assert_eq!(seen.len(), frames);
        });
    }
    assert!(pops > 0, "corpus never popped a frame; vacuous");
    assert!(cold > 0, "corpus never exercised the cold stack");
}

#[test]
fn dst_free_list_aba_adversary() {
    // The targeted ABA shape on one stripe: a slow popper reads the
    // head and its `next` link, gets suspended in that window, while a
    // fast churner pops the same frame, pops its successor, and pushes
    // the first frame back — reinstalling the head index the slow
    // popper observed. Without the tag bump the stale CAS succeeds and
    // the churner's still-owned successor leaks onto the list; the
    // checker reports the resulting double allocation.
    for (i, seed) in bpw_dst::seed_corpus(0xABA, 48).iter().enumerate() {
        let frames = 3;
        let fl = Arc::new(StripedFreeList::new(frames, 1));
        let mut sim = if i % 3 == 1 {
            Sim::new(*seed).with_pct(2)
        } else {
            Sim::new(*seed)
        };
        {
            // Slow popper: single pop-push cycles with pauses.
            let fl = Arc::clone(&fl);
            sim.spawn(move || {
                for _ in 0..4 {
                    if let Some(f) = fl.pop(0) {
                        bpw_dst::yield_now();
                        fl.push(0, f);
                    }
                    bpw_dst::yield_now();
                }
            });
        }
        for _ in 0..2 {
            // Churners: pop two, push both back in pop order (the
            // first-popped frame returns first — the ABA reinstall).
            let fl = Arc::clone(&fl);
            sim.spawn(move || {
                for _ in 0..5 {
                    let a = fl.pop(0);
                    let b = fl.pop(0);
                    if let Some(a) = a {
                        fl.push(0, a);
                    }
                    bpw_dst::yield_now();
                    if let Some(b) = b {
                        fl.push(0, b);
                    }
                }
            });
        }
        let out = sim.run();
        out.expect_clean();
        out.check(|o| {
            let report = check_free_list(&o.history, frames as u32, true);
            assert_eq!(report.free_at_end, frames as u32);
            assert_eq!(report.pops, report.pushes);
            assert_eq!(
                fl.len(),
                frames,
                "live count disagrees with the replayed history"
            );
        });
    }
}
