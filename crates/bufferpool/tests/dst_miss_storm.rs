//! Deterministic-simulation port of the miss-storm stress test: a few
//! virtual threads hammer a tiny pool whose working set is three times
//! its frame count, so fetches constantly take the partitioned miss
//! path — free-list pops, victim eviction, table rebinding — at
//! schedule points chosen by the seeded scheduler instead of by OS
//! timing. Each task fetches a disjoint page range (a precondition of
//! the commit-order checker) and sprinkles invalidations of its own
//! pages into the storm.

#![cfg(feature = "dst")]

use std::sync::atomic::Ordering;
use std::sync::Arc;

use bpw_bufferpool::{BufferPool, SimDisk, WrappedManager};
use bpw_core::WrapperConfig;
use bpw_dst::check::{check_commit_order, check_free_list};
use bpw_dst::{Op, RunOutcome, Sim};
use bpw_replacement::{Lru, ReplacementPolicy};

const FRAMES: usize = 4;
const TASKS: u64 = 3;
const PAGES_PER: u64 = 4;
const FETCHES: u64 = 8;

type Pool = BufferPool<WrappedManager<Lru>>;

fn make_pool() -> Arc<Pool> {
    Arc::new(BufferPool::new(
        FRAMES,
        64,
        WrappedManager::new(
            Lru::new(FRAMES),
            WrapperConfig::default()
                .with_queue_size(4)
                .with_batch_threshold(2)
                .with_combining(true),
        ),
        Arc::new(SimDisk::instant()),
    ))
}

fn run_storm(seed: u64, pct: bool) -> (RunOutcome, Arc<Pool>) {
    let pool = make_pool();
    let mut sim = if pct {
        Sim::new(seed).with_pct(3)
    } else {
        Sim::new(seed)
    };
    for t in 0..TASKS {
        let pool = Arc::clone(&pool);
        sim.spawn(move || {
            let mut s = pool.session();
            let mut x = bpw_dst::splitmix64(seed ^ t);
            for i in 0..FETCHES {
                x = bpw_dst::splitmix64(x);
                // Disjoint per-task range, 3x the pool across all tasks.
                let page = t * PAGES_PER + x % PAGES_PER;
                let p = s.fetch(page).unwrap();
                p.read(|d| {
                    assert_eq!(
                        u64::from_le_bytes(d[..8].try_into().unwrap()),
                        page,
                        "wrong bytes under dst miss storm"
                    );
                });
                drop(p);
                if i % 3 == 2 {
                    // Invalidate one of this task's own pages; Busy is
                    // fine mid-storm (someone may hold a pin).
                    pool.invalidate(t * PAGES_PER + (x >> 8) % PAGES_PER);
                }
            }
        });
    }
    (sim.run(), pool)
}

fn check_storm(out: &RunOutcome, pool: &Pool) {
    out.expect_clean();
    out.check(|o| {
        // Accounting: every fetch completed exactly one way.
        let st = pool.stats();
        let done: Vec<bool> = o
            .history
            .iter()
            .filter_map(|e| match e.op {
                Op::FetchDone { hit, .. } => Some(hit),
                _ => None,
            })
            .collect();
        assert_eq!(done.len() as u64, TASKS * FETCHES);
        assert_eq!(
            st.hits.load(Ordering::Relaxed),
            done.iter().filter(|h| **h).count() as u64
        );
        assert_eq!(
            st.misses.load(Ordering::Relaxed),
            done.iter().filter(|h| !**h).count() as u64
        );
        // Structure: no frame leaked between free list and table, no
        // duplicate mappings, and the recorded free-list history is
        // conservation-clean and agrees with the live count.
        assert_eq!(pool.free_frames() + pool.resident_count(), FRAMES);
        pool.check_mapping_invariants();
        let fr = check_free_list(&o.history, FRAMES as u32, true);
        assert_eq!(fr.free_at_end as usize, pool.free_frames());
        // Wrapper: program order + exactly-once commit under the storm.
        check_commit_order(&o.history);
        pool.manager()
            .wrapper()
            .with_locked(|p| p.check_invariants());
    });
}

#[test]
fn dst_miss_storm_invariants_hold_under_all_schedules() {
    let mut misses = 0;
    for (i, seed) in bpw_dst::seed_corpus(0x3155, 32).iter().enumerate() {
        let (out, pool) = run_storm(*seed, i % 4 == 3);
        check_storm(&out, &pool);
        misses += pool.stats().misses.load(Ordering::Relaxed);
    }
    assert!(
        misses > 0,
        "storm never missed; the miss path was not under test"
    );
}

#[test]
fn dst_miss_storm_same_seed_same_history() {
    for seed in [0x3157_01u64, 0x3157_02] {
        let (a, pa) = run_storm(seed, false);
        let (b, pb) = run_storm(seed, false);
        assert_eq!(
            a.schedule, b.schedule,
            "schedule diverged for seed {seed:#x}"
        );
        assert_eq!(a.history, b.history, "history diverged for seed {seed:#x}");
        assert_eq!(
            pa.stats().hits.load(Ordering::Relaxed),
            pb.stats().hits.load(Ordering::Relaxed)
        );
        assert_eq!(pa.free_frames(), pb.free_frames());
    }
}
