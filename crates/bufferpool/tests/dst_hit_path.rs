//! Deterministic-simulation suite for the lock-free hit path: the
//! tag-validated CAS pin racing invalidation, eviction, and miss-fill.
//!
//! The schedule point that matters sits inside [`BufferDesc::try_pin`],
//! between the tag read and the header CAS. Under the seeded scheduler
//! a *complete* invalidate + refill of the same frame can execute in
//! that window; the pin must then fail (the slow path bumped the header
//! version, so the CAS misses) rather than land on a frame that now
//! holds a different page. The CI-verified mutant
//! `dst_mutation = "no_version_check"` removes exactly that
//! re-verification — this suite is what catches it, via the wrong-bytes
//! read assertions below.
//!
//! Unlike `dst_miss_storm`, tasks here deliberately *share* pages (so
//! `check_commit_order` does not apply) — shared hot pages are what
//! make pin/invalidate/refill collisions dense enough to matter.

#![cfg(feature = "dst")]

use std::sync::atomic::Ordering;
use std::sync::Arc;

use bpw_bufferpool::{BufferPool, SimDisk, WrappedManager};
use bpw_core::WrapperConfig;
use bpw_dst::check::{check_free_list, check_pin_balance};
use bpw_dst::{Op, RunOutcome, Sim};
use bpw_replacement::{Lru, ReplacementPolicy};

type Pool = BufferPool<WrappedManager<Lru>>;

fn make_pool(frames: usize) -> Arc<Pool> {
    Arc::new(BufferPool::new(
        frames,
        64,
        WrappedManager::new(
            Lru::new(frames),
            WrapperConfig::default()
                .with_queue_size(4)
                .with_batch_threshold(2)
                .with_combining(true),
        ),
        Arc::new(SimDisk::instant()),
    ))
}

fn assert_page_bytes(d: &[u8], page: u64) {
    assert_eq!(
        u64::from_le_bytes(d[..8].try_into().unwrap()),
        page,
        "pinned frame holds another page's bytes: the pin's tag \
         validation let a retag slip through"
    );
}

// --- storm: fetchers × invalidator on shared hot pages ---------------------

const FRAMES: usize = 2;
const PAGES: u64 = 4;
const FETCHES: u64 = 10;
const FETCHERS: u64 = 2;

fn run_hit_storm(seed: u64, pct: bool) -> (RunOutcome, Arc<Pool>) {
    let pool = make_pool(FRAMES);
    let mut sim = if pct {
        Sim::new(seed).with_pct(3)
    } else {
        Sim::new(seed)
    };
    for t in 0..FETCHERS {
        let pool = Arc::clone(&pool);
        sim.spawn(move || {
            let mut s = pool.session();
            let mut x = bpw_dst::splitmix64(seed ^ (t + 1));
            for _ in 0..FETCHES {
                x = bpw_dst::splitmix64(x);
                // Both fetchers draw from the SAME page set: hits race
                // hits, and every page is an invalidation target.
                let page = x % PAGES;
                let p = s.fetch(page).unwrap();
                p.read(|d| assert_page_bytes(d, page));
                drop(p);
            }
        });
    }
    {
        // The antagonist: invalidates hot pages so resident mappings
        // vanish (and frames retag) between a fetcher's lookup and pin.
        let pool = Arc::clone(&pool);
        sim.spawn(move || {
            let mut x = bpw_dst::splitmix64(seed ^ 0xA57);
            for _ in 0..2 * FETCHES {
                x = bpw_dst::splitmix64(x);
                // Busy is fine: someone holds a pin right now.
                pool.invalidate(x % PAGES);
                bpw_dst::yield_now();
            }
        });
    }
    (sim.run(), pool)
}

fn check_hit_storm(out: &RunOutcome, pool: &Pool) {
    out.check(|o| {
        // Every fetch completed exactly one way, and the pool's own
        // counters agree with the recorded history.
        let st = pool.stats();
        let done: Vec<bool> = o
            .history
            .iter()
            .filter_map(|e| match e.op {
                Op::FetchDone { hit, .. } => Some(hit),
                _ => None,
            })
            .collect();
        assert_eq!(done.len() as u64, FETCHERS * FETCHES);
        assert_eq!(
            st.hits.load(Ordering::Relaxed),
            done.iter().filter(|h| **h).count() as u64
        );
        assert_eq!(
            st.misses.load(Ordering::Relaxed),
            done.iter().filter(|h| !**h).count() as u64
        );
        // Pin conservation: every recorded pin has a matching unpin and
        // nothing is held once all sessions ended. Sound even though
        // tasks share pages — a pinned frame's tag is stable, so the
        // per-page balance is well-defined.
        let pr = check_pin_balance(&o.history, true);
        assert!(pr.pins > 0, "storm never pinned; hit path not under test");
        assert_eq!(pr.pins, pr.unpins);
        // Structure: no frame leaked between free list and table, no
        // duplicate mappings, free-list history conservation-clean.
        assert_eq!(pool.free_frames() + pool.resident_count(), FRAMES);
        pool.check_mapping_invariants();
        let fr = check_free_list(&o.history, FRAMES as u32, true);
        assert_eq!(fr.free_at_end as usize, pool.free_frames());
        pool.manager()
            .wrapper()
            .with_locked(|p| p.check_invariants());
    });
}

#[test]
fn dst_hit_path_invariants_hold_under_all_schedules() {
    let mut hits = 0;
    for (i, seed) in bpw_dst::seed_corpus(0x417_BA7, 32).iter().enumerate() {
        let (out, pool) = run_hit_storm(*seed, i % 4 == 3);
        check_hit_storm(&out, &pool);
        hits += pool.stats().hits.load(Ordering::Relaxed);
    }
    assert!(hits > 0, "storm never hit; the hit path was not under test");
}

// --- descriptor-level race: the mutant catcher -----------------------------

/// The distilled hazard, at the descriptor level where the retag is
/// only a couple of schedule points long (through the pool a retag is a
/// full invalidate + miss-fill — dozens of yields — so a schedule that
/// fits one inside `try_pin`'s window is astronomically rare; here it
/// is common, which is what makes the `no_version_check` mutant
/// reliably catchable).
///
/// Task B flips one descriptor between pages 1 and 2 under the slow-path
/// latch — respecting pins, exactly like eviction — keeping a stand-in
/// "frame content" cell in sync. Task A spins `try_pin(1)` and asserts
/// that whenever the pin lands, the content is page 1's. A successful
/// CAS against the tag-validated header proves no retag intervened; the
/// mutant CASes against a *fresh* header instead, so a retag landing in
/// the window pins page 2's bytes under page 1's name.
#[test]
fn dst_pin_version_validation_blocks_tag_slippage() {
    use std::sync::atomic::AtomicU64;

    let mut caught_pins = 0u64;
    for (i, seed) in bpw_dst::seed_corpus(0xDE5C, 24).iter().enumerate() {
        let desc = Arc::new(bpw_bufferpool::BufferDesc::new());
        let content = Arc::new(AtomicU64::new(1));
        {
            let mut s = desc.lock();
            s.tag = 1;
            s.valid = true;
        }
        let mut sim = if i % 4 == 3 {
            Sim::new(*seed).with_pct(3)
        } else {
            Sim::new(*seed)
        };
        {
            let desc = Arc::clone(&desc);
            let content = Arc::clone(&content);
            sim.spawn(move || {
                let mut pins = 0u64;
                for _ in 0..200 {
                    let a = desc.try_pin(1);
                    if a.pinned {
                        pins += 1;
                        assert_eq!(
                            content.load(Ordering::Relaxed),
                            1,
                            "pinned page 1 but the frame holds page 2's \
                             bytes: a retag slipped past the pin's \
                             version validation"
                        );
                        desc.unpin();
                    }
                    bpw_dst::yield_now();
                }
                // Smuggle the count out through the history so the
                // outer loop can prove the test is not vacuous.
                bpw_dst::record(move || Op::FetchDone {
                    page: pins,
                    frame: 0,
                    hit: true,
                });
            });
        }
        {
            let desc = Arc::clone(&desc);
            sim.spawn(move || {
                let mut page = 1u64;
                for _ in 0..100 {
                    {
                        let mut s = desc.lock();
                        if s.pins == 0 {
                            // Retag, like eviction: only unpinned frames.
                            page = 3 - page; // 1 <-> 2
                            s.tag = page;
                            content.store(page, Ordering::Relaxed);
                        }
                    }
                    bpw_dst::yield_now();
                }
            });
        }
        let out = sim.run();
        out.check(|o| {
            let pr = check_pin_balance(&o.history, true);
            assert_eq!(pr.pins, pr.unpins);
            caught_pins += o
                .history
                .iter()
                .filter_map(|e| match e.op {
                    Op::FetchDone { page, .. } => Some(page),
                    _ => None,
                })
                .sum::<u64>();
        });
    }
    assert!(
        caught_pins > 0,
        "pins never landed; the race was not under test"
    );
}

// --- targeted race: pin vs invalidate + refill on ONE frame ----------------

/// One frame, two pages: task A hammers page 1 while task B cycles
/// `invalidate(1)` → `fetch(2)` → `invalidate(2)`, so the *only* frame
/// is constantly retagged 1 → 2 → 1. Maximizes the probability that a
/// full retag lands inside A's tag-read → CAS window; the read
/// assertions then distinguish the real pin (version-checked CAS: the
/// pin fails and A refetches) from the mutant (pin lands on page 2's
/// bytes).
fn run_refill_race(seed: u64, pct: bool) -> (RunOutcome, Arc<Pool>) {
    let pool = make_pool(1);
    let mut sim = if pct {
        Sim::new(seed).with_pct(3)
    } else {
        Sim::new(seed)
    };
    {
        let pool = Arc::clone(&pool);
        sim.spawn(move || {
            let mut s = pool.session();
            for _ in 0..12 {
                let p = s.fetch(1).unwrap();
                p.read(|d| assert_page_bytes(d, 1));
                drop(p);
            }
        });
    }
    {
        let pool = Arc::clone(&pool);
        sim.spawn(move || {
            let mut s = pool.session();
            for _ in 0..6 {
                pool.invalidate(1);
                let p = s.fetch(2).unwrap();
                p.read(|d| assert_page_bytes(d, 2));
                drop(p);
                pool.invalidate(2);
                bpw_dst::yield_now();
            }
        });
    }
    (sim.run(), pool)
}

#[test]
fn dst_pin_validation_survives_invalidate_refill_races() {
    for (i, seed) in bpw_dst::seed_corpus(0x9E7A6, 32).iter().enumerate() {
        let (out, pool) = run_refill_race(*seed, i % 2 == 1);
        out.check(|o| {
            let pr = check_pin_balance(&o.history, true);
            assert_eq!(pr.pins, pr.unpins);
            assert_eq!(pool.free_frames() + pool.resident_count(), 1);
            pool.check_mapping_invariants();
        });
    }
}

// --- determinism -----------------------------------------------------------

#[test]
fn dst_hit_path_same_seed_same_history() {
    for seed in [0x417_01u64, 0x417_02] {
        let (a, pa) = run_hit_storm(seed, false);
        let (b, pb) = run_hit_storm(seed, false);
        assert_eq!(a.schedule, b.schedule, "schedule diverged for {seed:#x}");
        assert_eq!(a.history, b.history, "history diverged for {seed:#x}");
        assert_eq!(
            pa.stats().hits.load(Ordering::Relaxed),
            pb.stats().hits.load(Ordering::Relaxed)
        );
        assert_eq!(pa.free_frames(), pb.free_frames());
    }
}
