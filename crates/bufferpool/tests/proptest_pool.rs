//! Property tests for the buffer pool: driven single-threaded, the pool
//! (page table + descriptors + manager) must agree exactly with the
//! plain `CacheSim` reference for any policy and any trace, and content
//! must always round-trip through eviction.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use bpw_bufferpool::{BufferPool, CoarseManager, SimDisk, WrappedManager};
use bpw_core::WrapperConfig;
use bpw_replacement::{CacheSim, PolicyKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single-threaded pool behaviour == CacheSim for every policy.
    #[test]
    fn pool_matches_cache_sim(
        kind in prop::sample::select(PolicyKind::ALL.to_vec()),
        frames in 2usize..24,
        trace in prop::collection::vec(0u64..48, 1..300),
    ) {
        // One miss shard: free frames are handed out in ascending order,
        // matching CacheSim's allocator. Frame-indexed policies (CLOCK)
        // make different—equally valid—decisions under striped
        // allocation, so exact equivalence is only defined against the
        // same allocation order.
        let pool = BufferPool::new(
            frames,
            32,
            CoarseManager::new(kind.build(frames)),
            Arc::new(SimDisk::instant()),
        )
        .with_miss_shards(1);
        let mut reference = CacheSim::new(kind.build(frames));
        let mut session = pool.session();
        for &page in &trace {
            let before_hits = pool.stats().hits.load(Ordering::Relaxed);
            let pinned = session.fetch(page).unwrap();
            pinned.read(|bytes| {
                prop_assert_eq!(
                    u64::from_le_bytes(bytes[..8].try_into().unwrap()),
                    page
                );
                Ok(())
            })?;
            drop(pinned);
            let pool_hit = pool.stats().hits.load(Ordering::Relaxed) > before_hits;
            let ref_hit = reference.access(page);
            prop_assert_eq!(pool_hit, ref_hit, "{} diverged on page {}", kind, page);
        }
        prop_assert_eq!(
            pool.stats().hits.load(Ordering::Relaxed),
            reference.stats().hits
        );
        prop_assert_eq!(pool.resident_count(), reference.resident_count());
    }

    /// Dirty data survives eviction: write a marker, evict via churn,
    /// re-fetch — the simulated disk must have persisted the write-back.
    /// (SimDisk regenerates content on read, so we check the write-back
    /// *count* matches the dirty evictions exactly.)
    #[test]
    fn every_dirty_eviction_writes_back(
        frames in 2usize..12,
        dirty_pages in prop::collection::btree_set(0u64..20, 1..8),
        churn in 20u64..60,
    ) {
        let pool = BufferPool::new(
            frames,
            32,
            CoarseManager::new(PolicyKind::Lru.build(frames)),
            Arc::new(SimDisk::instant()),
        );
        let mut session = pool.session();
        for &p in &dirty_pages {
            let pinned = session.fetch(p).unwrap();
            pinned.write(|bytes| bytes[9] = 0xEE);
        }
        // Churn through cold pages to force the dirty ones out.
        for p in 0..churn {
            drop(session.fetch(1_000 + p).unwrap());
        }
        let wrote = pool.storage().writes();
        let wb = pool.stats().writebacks.load(Ordering::Relaxed);
        prop_assert_eq!(wrote, wb, "every write-back must reach storage");
        prop_assert!(wb as usize <= dirty_pages.len(), "cannot write back more than was dirtied");
        // All dirty pages evicted (churn >> frames): each wrote back once.
        if churn as usize > frames + dirty_pages.len() {
            prop_assert_eq!(wb as usize, dirty_pages.len());
        }
    }

    /// Invalidations interleaved with fetches keep pool and policy in
    /// agreement about the resident count.
    #[test]
    fn invalidate_keeps_consistency(
        frames in 2usize..12,
        ops in prop::collection::vec((0u64..24, any::<bool>()), 1..200),
    ) {
        let pool = BufferPool::new(
            frames,
            32,
            WrappedManager::new(PolicyKind::TwoQ.build(frames), WrapperConfig::default()),
            Arc::new(SimDisk::instant()),
        );
        let mut session = pool.session();
        for &(page, invalidate) in &ops {
            if invalidate {
                pool.invalidate(page);
            } else {
                drop(session.fetch(page).unwrap());
            }
        }
        session.flush();
        let policy_resident =
            pool.manager().wrapper().with_locked(|p| {
                p.check_invariants();
                p.resident_count()
            });
        prop_assert_eq!(policy_resident, pool.resident_count());
    }
}
