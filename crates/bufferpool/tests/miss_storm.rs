//! Miss-storm stress test: many threads over a working set far larger
//! than the pool, so nearly every fetch takes the partitioned miss path
//! (per-shard miss locks + striped free list) concurrently. The test
//! asserts the accounting and structural invariants that partitioning
//! must not break:
//!
//! * `hits + misses == completed fetches` — no access lost or double
//!   counted across shard locks;
//! * `free_frames + resident_count == frames` — no frame leaked between
//!   the striped free list and the table;
//! * no two pages map to the same frame — shard-local rebinding never
//!   produced a duplicate mapping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bpw_bufferpool::{BufferPool, CoarseManager, SimDisk, WrappedManager};
use bpw_core::WrapperConfig;
use bpw_replacement::{Lirs, TwoQ};

/// Zipf-ish skew: square a uniform draw so low page ids dominate, with
/// a uniform tail mixed in — a miss-heavy blend of hot and cold pages.
fn skewed_page(x: &mut u64, universe: u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    if (*x).is_multiple_of(4) {
        // Uniform cold tail: almost always a miss.
        (*x >> 16) % universe
    } else {
        // Skewed hot head.
        let u = (*x >> 8) as f64 / u64::MAX as f64 * 256.0;
        ((u * u) as u64 * universe) >> 16
    }
}

fn storm<M: bpw_bufferpool::ReplacementManager + Sync>(
    pool: &BufferPool<M>,
    threads: u64,
    per_thread: u64,
    universe: u64,
) {
    let completed = AtomicU64::new(0);
    std::thread::scope(|sc| {
        for t in 0..threads {
            let pool = &pool;
            let completed = &completed;
            sc.spawn(move || {
                let mut s = pool.session();
                let mut x = 0x9E3779B9u64.wrapping_mul(t + 1);
                for i in 0..per_thread {
                    let page = if i % 3 == 0 {
                        // Uniform component.
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(t);
                        (x >> 20) % universe
                    } else {
                        skewed_page(&mut x, universe)
                    };
                    let p = s.fetch(page).unwrap();
                    p.read(|d| {
                        assert_eq!(
                            u64::from_le_bytes(d[..8].try_into().unwrap()),
                            page,
                            "wrong bytes under miss storm"
                        );
                    });
                    drop(p);
                    completed.fetch_add(1, Ordering::Relaxed);
                    if i % 97 == 0 {
                        // Sprinkle invalidations into the storm: they take
                        // the same shard locks and free-list stripes.
                        pool.invalidate(page.wrapping_add(1) % universe);
                    }
                }
            });
        }
    });
    let st = pool.stats();
    assert_eq!(
        st.hits.load(Ordering::Relaxed) + st.misses.load(Ordering::Relaxed),
        completed.load(Ordering::Relaxed),
        "hits + misses must equal completed fetches"
    );
    assert_eq!(
        pool.free_frames() + pool.resident_count(),
        pool.frames(),
        "frames leaked between free list and table"
    );
    pool.check_mapping_invariants();
    // The storm must actually have exercised the miss path heavily.
    assert!(
        st.misses.load(Ordering::Relaxed) > st.hits.load(Ordering::Relaxed) / 4,
        "working set did not overwhelm the pool; test is vacuous"
    );
}

#[test]
fn miss_storm_wrapped_pool_invariants_hold() {
    let frames = 64;
    let pool: BufferPool<WrappedManager<Lirs>> = BufferPool::new(
        frames,
        64,
        WrappedManager::new(Lirs::new(frames), WrapperConfig::default()),
        Arc::new(SimDisk::instant()),
    );
    // Working set 16x the pool.
    storm(&pool, 8, 4000, 1024);
    let summary = pool.miss_lock_summary();
    assert!(summary.shards > 1);
    assert!(
        pool.miss_lock_shard_snapshots()
            .iter()
            .filter(|s| s.acquisitions > 0)
            .count()
            > 1,
        "storm must spread misses over multiple shard locks"
    );
    assert_eq!(
        summary.total_acquisitions,
        pool.miss_lock_snapshot().acquisitions
    );
}

#[test]
fn miss_storm_coarse_single_shard_invariants_hold() {
    // The same storm against the coarse (1-shard) baseline: the
    // correctness properties are configuration-independent.
    let frames = 32;
    let pool = BufferPool::new(
        frames,
        64,
        CoarseManager::new(TwoQ::new(frames)),
        Arc::new(SimDisk::instant()),
    )
    .with_miss_shards(1);
    storm(&pool, 4, 3000, 512);
    assert_eq!(pool.miss_lock_shards(), 1);
}

#[test]
fn miss_storm_with_free_list_churn_steals() {
    // Invalidation-heavy storm: frames cycle through the striped free
    // list constantly, so stripes drain unevenly and stealing kicks in.
    let frames = 16;
    let pool: BufferPool<WrappedManager<TwoQ>> = BufferPool::new(
        frames,
        64,
        WrappedManager::new(TwoQ::new(frames), WrapperConfig::default()),
        Arc::new(SimDisk::instant()),
    );
    std::thread::scope(|sc| {
        for t in 0..4u64 {
            let pool = &pool;
            sc.spawn(move || {
                let mut s = pool.session();
                for i in 0..4000u64 {
                    let page = (i.wrapping_mul(t + 1)) % 256;
                    drop(s.fetch(page).unwrap());
                    if i % 5 == 0 {
                        pool.invalidate((page + t) % 256);
                    }
                }
            });
        }
    });
    assert_eq!(pool.free_frames() + pool.resident_count(), frames);
    pool.check_mapping_invariants();
    assert!(
        pool.free_list_steals() > 0,
        "churn over {frames} frames and many stripes must trigger steals"
    );
}
