//! Regression tests for the pool's two delicate cross-thread paths:
//! `invalidate` racing concurrently pinned fetches, and WAL/SimDisk
//! durability under crashes and concurrent writers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bpw_bufferpool::{BufferPool, CoarseManager, SimDisk, Storage, Wal, WrappedManager};
use bpw_core::WrapperConfig;
use bpw_replacement::{Lirs, TwoQ};

/// `invalidate` racing a herd of fetching/pinning threads must never
/// corrupt contents, lose frames, or invalidate a pinned page.
///
/// Guarantees exercised:
/// * a fetch that overlaps an invalidation either sees the old valid
///   copy or reloads from storage — both carry the page's bytes;
/// * `invalidate` refuses pages currently pinned (returns `false`);
/// * every frame freed by `invalidate` is reusable: at the end,
///   `free_frames + resident_count == frames`.
#[test]
fn invalidate_races_concurrent_pins_without_corruption() {
    let frames = 32;
    let pool: BufferPool<WrappedManager<TwoQ>> = BufferPool::new(
        frames,
        64,
        WrappedManager::new(TwoQ::new(frames), WrapperConfig::default()),
        Arc::new(SimDisk::instant()),
    );
    let pages = 48u64; // more than frames: eviction + invalidation mix
    let stop = AtomicBool::new(false);
    let invalidations = AtomicU64::new(0);
    let rejected_while_pinned = AtomicU64::new(0);

    std::thread::scope(|sc| {
        // Fetchers: pin, verify, hold briefly.
        for t in 0..4u64 {
            let pool = &pool;
            let stop = &stop;
            sc.spawn(move || {
                let mut s = pool.session();
                let mut x = 0x1234_5678u64.wrapping_add(t);
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let page = x % pages;
                    let p = s.fetch(page).unwrap();
                    p.read(|data| {
                        assert_eq!(
                            u64::from_le_bytes(data[..8].try_into().unwrap()),
                            page,
                            "fetch raced invalidate into wrong content"
                        );
                    });
                    // Invalidate the page we ourselves hold pinned: must
                    // always be refused.
                    if x % 7 == 0 {
                        assert!(
                            !pool.invalidate(page).is_invalidated(),
                            "invalidate succeeded on a pinned page"
                        );
                    }
                    drop(p);
                }
            });
        }
        // Invalidator: sweeps the page set continuously.
        {
            let pool = &pool;
            let stop = &stop;
            let invalidations = &invalidations;
            let rejected = &rejected_while_pinned;
            sc.spawn(move || {
                for round in 0..400u64 {
                    for page in 0..pages {
                        if pool.invalidate(page).is_invalidated() {
                            invalidations.fetch_add(1, Ordering::Relaxed);
                        } else {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if round % 32 == 0 {
                        std::thread::yield_now();
                    }
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    });

    assert!(
        invalidations.load(Ordering::Relaxed) > 0,
        "invalidator never won a race"
    );
    // No frame leaked: everything is either resident or on the free list.
    assert_eq!(
        pool.resident_count() + pool.free_frames(),
        frames,
        "frames leaked by racing invalidations"
    );
    // The pool still works after the storm.
    let mut s = pool.session();
    for page in 0..pages {
        s.fetch(page).unwrap().read(|d| {
            assert_eq!(u64::from_le_bytes(d[..8].try_into().unwrap()), page);
        });
    }
}

/// Crash in the middle of a multi-page transaction: the committed
/// transaction is fully recovered, the torn one leaves no trace, and
/// replay is idempotent.
#[test]
fn wal_recovery_after_crash_mid_transaction() {
    let wal = Arc::new(Wal::instant());
    let storage: Arc<SimDisk> = Arc::new(SimDisk::instant());
    {
        // Big pool: nothing is evicted, so no write reaches storage
        // except through recovery.
        let pool = BufferPool::new(
            64,
            128,
            CoarseManager::new(TwoQ::new(64)),
            Arc::clone(&storage) as Arc<dyn Storage>,
        )
        .with_wal(Arc::clone(&wal));
        let mut s = pool.session();

        // Transaction 1: touches two pages, commits.
        s.fetch(10).unwrap().write(|d| d[32] = 0x11);
        s.fetch(11).unwrap().write(|d| d[32] = 0x22);
        pool.commit_transaction().unwrap();

        // Transaction 2: first write lands in the log buffer, the
        // "crash" happens before the second write's commit — mid-write
        // from the transaction's point of view.
        s.fetch(12).unwrap().write(|d| d[32] = 0x33);
        s.fetch(13).unwrap().write(|d| d[32] = 0x44);
        // no commit — crash here
    }
    assert_eq!(
        storage.writes(),
        0,
        "no data page reached storage pre-crash"
    );

    BufferPool::<CoarseManager<TwoQ>>::replay_wal_into_storage(&wal, &*storage).unwrap();
    let writes_after_first_replay = storage.writes();

    let verify = |storage: &Arc<SimDisk>| {
        let pool = BufferPool::new(
            64,
            128,
            CoarseManager::new(TwoQ::new(64)),
            Arc::clone(storage) as Arc<dyn Storage>,
        );
        let mut s = pool.session();
        s.fetch(10)
            .unwrap()
            .read(|d| assert_eq!(d[32], 0x11, "committed write lost"));
        s.fetch(11)
            .unwrap()
            .read(|d| assert_eq!(d[32], 0x22, "committed write lost"));
        s.fetch(12)
            .unwrap()
            .read(|d| assert_ne!(d[32], 0x33, "torn transaction resurrected"));
        s.fetch(13)
            .unwrap()
            .read(|d| assert_ne!(d[32], 0x44, "torn transaction resurrected"));
    };
    verify(&storage);

    // Recovery must be idempotent: replaying again changes nothing.
    BufferPool::<CoarseManager<TwoQ>>::replay_wal_into_storage(&wal, &*storage).unwrap();
    assert_eq!(
        storage.writes(),
        2 * writes_after_first_replay,
        "second replay applied a different record set"
    );
    verify(&storage);
}

/// Crash with a *partially durable* transaction: eviction write-back
/// forces the WAL (WAL-before-data), which can make an uncommitted
/// transaction's early records durable. Recovery then replays them —
/// the classic redo-without-undo contract of a physical log — while
/// records appended after the forced flush stay lost.
#[test]
fn wal_recovery_respects_forced_flush_boundary() {
    let wal = Arc::new(Wal::instant());
    let storage: Arc<SimDisk> = Arc::new(SimDisk::instant());
    {
        let pool = BufferPool::new(
            2, // tiny: fetching a third page evicts a dirty one
            128,
            CoarseManager::new(TwoQ::new(2)),
            Arc::clone(&storage) as Arc<dyn Storage>,
        )
        .with_wal(Arc::clone(&wal));
        let mut s = pool.session();
        s.fetch(1).unwrap().write(|d| d[40] = 0xA1); // uncommitted...
        drop(s.fetch(2).unwrap());
        drop(s.fetch(3).unwrap()); // ...but this eviction forces the WAL for page 1
        let flushed = wal.flushed_lsn();
        assert!(flushed > 0, "write-back must have forced the log");
        s.fetch(4).unwrap().write(|d| d[40] = 0xB2); // appended after the flush
        assert!(wal.append_lsn() > flushed);
        // crash
    }
    BufferPool::<CoarseManager<TwoQ>>::replay_wal_into_storage(&wal, &*storage).unwrap();
    let pool = BufferPool::new(
        8,
        128,
        CoarseManager::new(TwoQ::new(8)),
        Arc::clone(&storage) as Arc<dyn Storage>,
    );
    let mut s = pool.session();
    s.fetch(1)
        .unwrap()
        .read(|d| assert_eq!(d[40], 0xA1, "force-flushed record must replay"));
    s.fetch(4)
        .unwrap()
        .read(|d| assert_ne!(d[40], 0xB2, "unflushed tail must not replay"));
}

/// SimDisk under concurrent writers: page contents are exactly the last
/// version each owning thread wrote, regardless of interleaving — the
/// property the server's PUT path and the pool's write-back both lean
/// on.
#[test]
fn simdisk_concurrent_writeback_is_deterministic() {
    let disk = Arc::new(SimDisk::instant());
    let threads = 4u64;
    let pages_per_thread = 16u64;
    let versions = 50u64;
    std::thread::scope(|sc| {
        for t in 0..threads {
            let disk = Arc::clone(&disk);
            sc.spawn(move || {
                let mut buf = vec![0u8; 64];
                for v in 1..=versions {
                    for i in 0..pages_per_thread {
                        let page = t * pages_per_thread + i;
                        buf[..8].copy_from_slice(&page.to_le_bytes());
                        buf[8..16].copy_from_slice(&v.to_le_bytes());
                        buf[16..].fill((v % 251) as u8);
                        disk.write_page(page, &buf).unwrap();
                    }
                }
            });
        }
    });
    assert_eq!(disk.written_pages(), (threads * pages_per_thread) as usize);
    assert_eq!(disk.writes(), threads * pages_per_thread * versions);
    let mut buf = vec![0u8; 64];
    for page in 0..threads * pages_per_thread {
        disk.read_page(page, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf[..8].try_into().unwrap()), page);
        assert_eq!(
            u64::from_le_bytes(buf[8..16].try_into().unwrap()),
            versions,
            "page {page} does not hold its last-written version"
        );
        assert!(buf[16..].iter().all(|&b| b == (versions % 251) as u8));
    }
}

/// The same determinism through the full pool stack: concurrent
/// sessions writing disjoint pages, churned through a pool smaller than
/// the working set, must read back exactly what they last wrote.
#[test]
fn pool_writeback_roundtrip_under_concurrent_writers() {
    let frames = 16;
    let pool: BufferPool<WrappedManager<Lirs>> = BufferPool::new(
        frames,
        64,
        WrappedManager::new(Lirs::new(frames), WrapperConfig::default()),
        Arc::new(SimDisk::instant()),
    );
    let threads = 4u64;
    let pages_per_thread = 12u64; // 48 pages through 16 frames: heavy churn
    std::thread::scope(|sc| {
        for t in 0..threads {
            let pool = &pool;
            sc.spawn(move || {
                let mut s = pool.session();
                for round in 1..=40u8 {
                    for i in 0..pages_per_thread {
                        let page = t * pages_per_thread + i;
                        let p = s.fetch(page).unwrap();
                        p.write(|d| {
                            d[20] = round;
                            d[21] = t as u8;
                        });
                    }
                }
            });
        }
    });
    let mut s = pool.session();
    for t in 0..threads {
        for i in 0..pages_per_thread {
            let page = t * pages_per_thread + i;
            s.fetch(page).unwrap().read(|d| {
                assert_eq!(u64::from_le_bytes(d[..8].try_into().unwrap()), page);
                assert_eq!(d[20], 40, "page {page} lost its final write");
                assert_eq!(d[21], t as u8);
            });
        }
    }
}
