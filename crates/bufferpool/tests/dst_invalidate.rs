//! Deterministic-simulation coverage for the invalidate/fetch race and
//! the `InvalidateOutcome::Busy` retry loop: a page is pinned by one
//! virtual thread, re-fetched by another, and invalidated by a third
//! that retries on `Busy` until it gets a definitive answer. Under
//! every schedule the retry loop must converge to `Invalidated` or
//! `NotResident` (never spin forever — the step budget would abort the
//! run), and the pool must end with `free + resident == frames`.

#![cfg(feature = "dst")]

use std::sync::Arc;

use bpw_bufferpool::{BufferPool, InvalidateOutcome, SimDisk, WrappedManager};
use bpw_core::WrapperConfig;
use bpw_dst::check::check_free_list;
use bpw_dst::{Op, Sim};
use bpw_replacement::Lru;

const FRAMES: usize = 2;
const PAGE: u64 = 5;

type Pool = BufferPool<WrappedManager<Lru>>;

fn make_pool() -> Arc<Pool> {
    Arc::new(BufferPool::new(
        FRAMES,
        64,
        WrappedManager::new(
            Lru::new(FRAMES),
            WrapperConfig::default()
                .with_queue_size(2)
                .with_batch_threshold(1)
                .with_combining(true),
        ),
        Arc::new(SimDisk::instant()),
    ))
}

/// Retry `invalidate(page)` through transient `Busy` answers until it
/// resolves; panics if the loop cannot resolve within the simulation's
/// step budget (which would mean `Busy` is not actually transient).
fn invalidate_converging(pool: &Pool, page: u64) -> InvalidateOutcome {
    loop {
        let out = pool.invalidate(page);
        if !out.is_retryable() {
            return out;
        }
        bpw_dst::yield_now();
    }
}

#[test]
fn dst_invalidate_retry_loop_converges_under_pin_races() {
    let mut busy_seen = 0u64;
    let mut invalidated_seen = 0u64;
    for (i, seed) in bpw_dst::seed_corpus(0x1BAD, 40).iter().enumerate() {
        let pool = make_pool();
        let mut sim = if i % 4 == 1 {
            Sim::new(*seed).with_pct(2)
        } else {
            Sim::new(*seed)
        };
        {
            // Pinner: holds PAGE pinned across yields, then releases
            // and touches it once more.
            let pool = Arc::clone(&pool);
            sim.spawn(move || {
                let mut s = pool.session();
                let p = s.fetch(PAGE).unwrap();
                for _ in 0..4 {
                    bpw_dst::yield_now();
                }
                drop(p);
                drop(s.fetch(PAGE).unwrap());
            });
        }
        {
            // Fetcher: races fetches of PAGE (and a neighbour, to force
            // eviction pressure on the 2-frame pool) against the
            // invalidation.
            let pool = Arc::clone(&pool);
            sim.spawn(move || {
                let mut s = pool.session();
                for k in 0..3u64 {
                    drop(s.fetch(PAGE).unwrap());
                    drop(s.fetch(PAGE + 1 + (k % 2)).unwrap());
                }
            });
        }
        {
            // Invalidator: must get a definitive outcome despite pins.
            let pool = Arc::clone(&pool);
            sim.spawn(move || {
                let out = invalidate_converging(&pool, PAGE);
                assert!(
                    matches!(
                        out,
                        InvalidateOutcome::Invalidated | InvalidateOutcome::NotResident
                    ),
                    "retry loop ended on a transient outcome: {out:?}"
                );
            });
        }
        let out = sim.run();
        out.expect_clean();
        out.check(|o| {
            assert_eq!(pool.free_frames() + pool.resident_count(), FRAMES);
            pool.check_mapping_invariants();
            let fr = check_free_list(&o.history, FRAMES as u32, true);
            assert_eq!(fr.free_at_end as usize, pool.free_frames());
        });
        // Tally invalidate outcomes from the recorded history
        // (0 = Invalidated, 1 = NotResident, 2 = Busy).
        for e in &out.history {
            match e.op {
                Op::Invalidate { outcome: 2, .. } => busy_seen += 1,
                Op::Invalidate { outcome: 0, .. } => invalidated_seen += 1,
                _ => {}
            }
        }
    }
    // The corpus must actually explore both the contended and the
    // successful paths, or the retry loop was never under test.
    assert!(busy_seen > 0, "no schedule ever answered Busy; vacuous");
    assert!(
        invalidated_seen > 0,
        "no schedule ever invalidated; vacuous"
    );
}

#[test]
fn dst_invalidate_same_seed_same_outcome() {
    // Replay determinism for the raciest scenario in the suite.
    let seed = 0x1BAD_5EEDu64;
    let run = || {
        let pool = make_pool();
        let mut sim = Sim::new(seed);
        {
            let pool = Arc::clone(&pool);
            sim.spawn(move || {
                let mut s = pool.session();
                let p = s.fetch(PAGE).unwrap();
                bpw_dst::yield_now();
                drop(p);
            });
        }
        {
            let pool = Arc::clone(&pool);
            sim.spawn(move || {
                let _ = invalidate_converging(&pool, PAGE);
            });
        }
        sim.run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.history, b.history);
}
