//! Microbenchmark: per-hit cost of each synchronization scheme on one
//! thread — what a backend pays on its own fast path. The paper's claim
//! is that BP-Wrapper's recording cost (a queue push) is comparable to
//! CLOCK's bit-set, while lock-per-access pays an acquisition every time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bpw_core::{BpWrapper, ClockHitPath, WrapperConfig};
use bpw_replacement::{ReplacementPolicy, TwoQ};

const FRAMES: usize = 4096;

fn warmed(cfg: WrapperConfig) -> BpWrapper<TwoQ> {
    let w = BpWrapper::new(TwoQ::new(FRAMES), cfg);
    w.with_locked(|p| {
        for i in 0..FRAMES as u64 {
            p.record_miss(i, Some(i as u32), &mut |_| true);
        }
    });
    w
}

fn bench_hit_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("hit_path_single_thread");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_millis(500));
    g.warm_up_time(std::time::Duration::from_millis(200));

    let clock = ClockHitPath::new(FRAMES);
    let mut x = 1u64;
    g.bench_function("pgClock_bit_set", |b| {
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            clock.record_hit(black_box((x % FRAMES as u64) as u32));
        })
    });

    for (name, cfg) in [
        ("pgQ_lock_per_access", WrapperConfig::lock_per_access()),
        ("pgBat_batch32", WrapperConfig::batching_only()),
        (
            "pgBatPre_batch32_prefetch",
            WrapperConfig::batching_and_prefetching(),
        ),
    ] {
        let wrapper = warmed(cfg);
        let mut handle = wrapper.handle();
        let mut x = 1u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let page = x % FRAMES as u64;
                handle.record_hit(black_box(page), page as u32);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hit_path);
criterion_main!(benches);
