//! Microbenchmark: Fig. 2 in microcosm — cost of committing a batch of
//! queued accesses as the batch size grows. Total cost per access should
//! fall as the fixed acquisition cost amortizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bpw_core::{BpWrapper, WrapperConfig};
use bpw_replacement::{Lirs, ReplacementPolicy};

const FRAMES: usize = 4096;

fn bench_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("batched_commit_per_access");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_millis(500));
    g.warm_up_time(std::time::Duration::from_millis(200));
    for batch in [1usize, 4, 16, 64] {
        let cfg = WrapperConfig {
            queue_size: batch,
            batch_threshold: batch, // commit exactly at `batch`
            batching: true,
            prefetching: true,
            combining: bpw_core::Combining::Off,
        };
        let wrapper = BpWrapper::new(Lirs::new(FRAMES), cfg);
        wrapper.with_locked(|p| {
            for i in 0..FRAMES as u64 {
                p.record_miss(i, Some(i as u32), &mut |_| true);
            }
        });
        let mut handle = wrapper.handle();
        let mut x = 7u64;
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                for _ in 0..batch {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let page = x % FRAMES as u64;
                    handle.record_hit(black_box(page), page as u32);
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_commit);
criterion_main!(benches);
