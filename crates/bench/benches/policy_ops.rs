//! Microbenchmark: raw cost of the replacement algorithms' hit and miss
//! bookkeeping — the operations the paper's critical section performs.
//! This calibrates the simulator's `cs_per_access_ns` parameter against
//! real data structures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bpw_replacement::{CacheSim, PolicyKind};

fn bench_hits(c: &mut Criterion) {
    let mut g = c.benchmark_group("record_hit");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_millis(500));
    g.warm_up_time(std::time::Duration::from_millis(200));
    let frames = 4096;
    for kind in PolicyKind::ALL {
        let mut policy = kind.build(frames);
        for i in 0..frames as u64 {
            policy.record_miss(i, Some(i as u32), &mut |_| true);
        }
        let mut x = 0x9E3779B97F4A7C15u64;
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &(), |b, _| {
            b.iter(|| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                policy.record_hit(black_box((x % frames as u64) as u32));
            })
        });
    }
    g.finish();
}

fn bench_miss_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("miss_evict_admit");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_millis(500));
    g.warm_up_time(std::time::Duration::from_millis(200));
    let frames = 1024;
    for kind in PolicyKind::ALL {
        let mut sim = CacheSim::new(kind.build(frames));
        let mut page = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &(), |b, _| {
            b.iter(|| {
                // Always-miss stream: full evict+admit cycle per call.
                page += 1;
                sim.access(black_box(page + 1_000_000));
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hits, bench_miss_cycle);
criterion_main!(benches);
