//! # bpw-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (§IV), plus Criterion microbenchmarks. Each binary prints
//! the same rows/series the paper reports and writes a CSV under
//! `results/`.
//!
//! | Paper exhibit | Binary |
//! |---|---|
//! | Fig. 2 (lock time vs batch size) | `fig2_batch_amortization` |
//! | Fig. 6 (Altix 350 scaling) | `fig6_altix_scaling` |
//! | Fig. 7 (PowerEdge 1900 scaling) | `fig7_poweredge_scaling` |
//! | Table II (queue-size sweep) | `table2_queue_size` |
//! | Table III (threshold sweep) | `table3_batch_threshold` |
//! | Fig. 8 (hit ratio / overall throughput) | `fig8_overall` |
//! | real-hardware contention counts | `real_contention` |

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned text table that can also serialize to CSV.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Write as CSV under `results/<name>.csv`.
    pub fn write_csv(&self, name: &str) {
        let dir = Path::new("results");
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let mut csv = String::new();
        let _ = writeln!(csv, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(csv, "{}", row.join(","));
        }
        let _ = std::fs::write(dir.join(format!("{name}.csv")), csv);
    }
}

/// Format a float compactly for table cells.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["long-label".into(), "22.5".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("long-label"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(42.25), "42.2");
        assert_eq!(fmt(1.5), "1.500");
    }
}

pub mod scaling;
