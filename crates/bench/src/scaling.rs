//! Shared driver for the Fig. 6 / Fig. 7 scaling experiments: five
//! systems × three workloads × a processor sweep, reporting the paper's
//! three metrics and checking the headline claims.

use bpw_core::SystemKind;
use bpw_sim::{sweep_systems, HardwareProfile, RunReport, WorkloadParams};
use bpw_workloads::WorkloadKind;

use crate::{fmt, Table};

/// Run the full figure for one machine profile. Returns true if every
/// headline claim reproduced.
pub fn scaling_figure(hw: HardwareProfile, cpu_points: &[usize], tag: &str) -> bool {
    let mut headline_ok = true;
    for wl_kind in WorkloadKind::ALL {
        let wl = WorkloadParams::for_kind(wl_kind);
        let sweep = sweep_systems(hw, &wl, cpu_points, 800);
        // Re-shape: one row per cpu count, one column per system.
        let results: Vec<(usize, Vec<RunReport>)> = cpu_points
            .iter()
            .map(|&cpus| {
                (
                    cpus,
                    SystemKind::ALL
                        .iter()
                        .map(|&k| *sweep.system(k).at(cpus).expect("swept"))
                        .collect(),
                )
            })
            .collect();
        let sys_names: Vec<&str> = SystemKind::ALL.iter().map(|k| k.name()).collect();

        let mut tput = Table::new(
            &format!("{} ({}): throughput (txn/s)", wl_kind.name(), hw.name),
            &[&["cpus"], &sys_names[..]].concat(),
        );
        let mut resp = Table::new(
            &format!(
                "{} ({}): average response time (ms)",
                wl_kind.name(),
                hw.name
            ),
            &[&["cpus"], &sys_names[..]].concat(),
        );
        let mut cont = Table::new(
            &format!(
                "{} ({}): average lock contention (per million accesses)",
                wl_kind.name(),
                hw.name
            ),
            &[&["cpus"], &sys_names[..]].concat(),
        );
        for (cpus, row) in &results {
            tput.row(
                std::iter::once(cpus.to_string())
                    .chain(row.iter().map(|r| fmt(r.throughput_tps)))
                    .collect(),
            );
            resp.row(
                std::iter::once(cpus.to_string())
                    .chain(row.iter().map(|r| fmt(r.avg_response_ms)))
                    .collect(),
            );
            cont.row(
                std::iter::once(cpus.to_string())
                    .chain(row.iter().map(|r| fmt(r.contentions_per_million)))
                    .collect(),
            );
        }
        tput.print();
        resp.print();
        cont.print();
        let slug = wl_kind.name().to_lowercase().replace('-', "");
        tput.write_csv(&format!("{tag}_{slug}_throughput"));
        resp.write_csv(&format!("{tag}_{slug}_response"));
        cont.write_csv(&format!("{tag}_{slug}_contention"));

        // Headline checks at the maximum processor count.
        let (_, last) = results.last().unwrap();
        let clock = &last[0];
        let q = &last[1];
        let batpre = &last[4];
        let tracks_clock = batpre.throughput_tps >= 0.9 * clock.throughput_tps;
        let q_degrades = q.throughput_tps <= 0.75 * clock.throughput_tps;
        let contention_cut =
            q.contentions_per_million >= 90.0 * batpre.contentions_per_million.max(0.1);
        println!(
            "[{}] pgBatPre/pgClock = {:.2}x (want ~1.0) | pgQ/pgClock = {:.2}x (want << 1) | \
             contention cut pgQ/pgBatPre = {:.0}x (paper: 97x-9000x)\n",
            wl_kind.name(),
            batpre.throughput_tps / clock.throughput_tps,
            q.throughput_tps / clock.throughput_tps,
            q.contentions_per_million / batpre.contentions_per_million.max(0.1),
        );
        headline_ok &= tracks_clock && q_degrades && contention_cut;
    }
    println!(
        "headline claims {} on {}",
        if headline_ok {
            "REPRODUCED"
        } else {
            "NOT fully reproduced"
        },
        hw.name
    );
    headline_ok
}
