//! Cost of the tracing layer on the paper's hit-only contention
//! workload (the `real_contention` setup: wrapped 2Q, 4 threads,
//! 500k accesses each).
//!
//! Three modes, best of several repeats each:
//!
//! * `baseline`  — tracing off, collector never touched: the untraced
//!   reference.
//! * `disabled`  — tracing off after rings exist: what production pays
//!   for having the instrumentation compiled in (one relaxed load per
//!   site). Must be within noise of `baseline`.
//! * `enabled`   — tracing on: clock reads + ring pushes on every
//!   span. The run's events are exported as a Chrome trace.
//!
//! Writes `results/trace_overhead.jsonl` and
//! `results/trace_overhead.trace.json`.
//!
//! With `--gate`, additionally enforces ISSUE 7's regression budget:
//! the disabled-tracing mode must stay within 1% of the untraced
//! baseline (exit code 1 otherwise), so CI catches any hot-path cost
//! sneaking into the compiled-in-but-off instrumentation.

use std::time::Instant;

use bpw_core::{BpWrapper, WrapperConfig};
use bpw_metrics::JsonObject;
use bpw_replacement::{ReplacementPolicy, TwoQ};

const FRAMES: usize = 8192;
const THREADS: u64 = 4;
const PER_THREAD: u64 = 500_000;
const REPEATS: usize = 3;
/// Events kept in the committed Chrome trace artifact (the full stream
/// is hundreds of thousands of events; the earliest slice already shows
/// every span kind from every thread).
const EXPORT_CAP: usize = 8192;

/// One timed pass of the hit-only workload; returns throughput in
/// million accesses per second.
fn run_once() -> f64 {
    let wrapper = BpWrapper::new(TwoQ::new(FRAMES), WrapperConfig::default());
    wrapper.with_locked(|p| {
        for i in 0..FRAMES as u64 {
            p.record_miss(i, Some(i as u32), &mut |_| true);
        }
    });
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for th in 0..THREADS {
            let wrapper = &wrapper;
            s.spawn(move || {
                let mut h = wrapper.handle();
                let mut x = 0xABCD_EF01_2345_6789u64 ^ th;
                for _ in 0..PER_THREAD {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let page = x % FRAMES as u64;
                    h.record_hit(page, page as u32);
                }
            });
        }
    });
    (THREADS * PER_THREAD) as f64 / t0.elapsed().as_secs_f64() / 1e6
}

/// Best-of-N throughput (max filters scheduler noise on a shared host).
fn best_of(n: usize, lines: &mut Vec<String>, mode: &str) -> f64 {
    let mut best = 0.0f64;
    for run in 0..n {
        let macc = run_once();
        println!("{mode:>9} run {run}: {macc:.2} Macc/s");
        let mut o = JsonObject::new();
        o.field_str("mode", mode)
            .field_u64("run", run as u64)
            .field_u64("threads", THREADS)
            .field_u64("accesses_per_thread", PER_THREAD)
            .field_f64("throughput_macc_per_s", macc);
        lines.push(o.finish());
        best = best.max(macc);
    }
    best
}

/// Maximum tolerated slowdown of `disabled` vs `baseline` under
/// `--gate`: disabled throughput must be >= 99% of baseline.
const GATE_FLOOR: f64 = 0.99;

fn main() {
    let gate = std::env::args().any(|a| a == "--gate");
    let mut lines = Vec::new();

    // Untraced reference: the collector has never been enabled and no
    // worker thread owns a ring yet.
    assert!(!bpw_trace::enabled());
    let baseline = best_of(REPEATS, &mut lines, "baseline");

    // Enabled: every batch commit and lock hold becomes a span.
    bpw_trace::set_enabled(true);
    let enabled = best_of(REPEATS, &mut lines, "enabled");
    bpw_trace::set_enabled(false);
    let events = bpw_trace::drain();
    let dropped = bpw_trace::dropped();
    let export = &events[..events.len().min(EXPORT_CAP)];
    bpw_trace::write_chrome_trace("results/trace_overhead.trace.json", export)
        .expect("write chrome trace");

    // Disabled-after-use: rings exist, flag is off — the steady-state
    // production cost of shipping the instrumentation.
    let disabled = best_of(REPEATS, &mut lines, "disabled");

    let mut o = JsonObject::new();
    o.field_str("mode", "summary")
        .field_f64("baseline_macc_per_s", baseline)
        .field_f64("disabled_macc_per_s", disabled)
        .field_f64("enabled_macc_per_s", enabled)
        .field_f64("disabled_over_baseline", disabled / baseline)
        .field_f64("enabled_over_baseline", enabled / baseline)
        .field_u64("trace_events_drained", events.len() as u64)
        .field_u64("trace_events_exported", export.len() as u64)
        .field_u64("trace_events_dropped", dropped)
        .field_u64("trace_threads", bpw_trace::thread_count() as u64);
    lines.push(o.finish());

    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write("results/trace_overhead.jsonl", lines.join("\n") + "\n")
        .expect("write trace_overhead.jsonl");

    println!(
        "\nbaseline {baseline:.2} | disabled {disabled:.2} ({:+.1}%) | enabled {enabled:.2} ({:+.1}%)",
        (disabled / baseline - 1.0) * 100.0,
        (enabled / baseline - 1.0) * 100.0,
    );
    println!(
        "drained {} events ({dropped} dropped on overflow), exported {} -> results/trace_overhead.trace.json",
        events.len(),
        export.len()
    );

    if gate {
        let ratio = disabled / baseline;
        if ratio < GATE_FLOOR {
            eprintln!(
                "GATE FAIL: disabled tracing runs at {:.1}% of baseline (floor {:.0}%) — \
                 the compiled-in-but-off instrumentation costs more than 1%",
                ratio * 100.0,
                GATE_FLOOR * 100.0
            );
            std::process::exit(1);
        }
        println!(
            "GATE OK: disabled tracing at {:.1}% of baseline (floor {:.0}%)",
            ratio * 100.0,
            GATE_FLOOR * 100.0
        );
    }
}
