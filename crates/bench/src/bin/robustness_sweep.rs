//! **Model-robustness sweep**: a simulation-based reproduction is only
//! trustworthy if its conclusions do not hinge on the particular cost
//! constants chosen. This experiment perturbs every key parameter of
//! the Altix cost model by ±50% and re-checks the two headline claims
//! at 16 CPUs on DBT-1:
//!
//! 1. `pgBatPre` tracks `pgClock` (ratio ≥ 0.9), and
//! 2. `pgQ` degrades badly (ratio ≤ 0.75).
//!
//! If the claims hold across the whole grid, the reproduction's shape
//! conclusions are a property of the *mechanism* (batching amortizes a
//! serialized resource), not of the calibration.

use bpw_bench::{fmt, Table};
use bpw_core::SystemKind;
use bpw_sim::{simulate, HardwareProfile, SimParams, SystemSpec, WorkloadParams};

fn ratio_at_16(hw: HardwareProfile, kind: SystemKind) -> f64 {
    let mut p = SimParams::new(hw, 16, SystemSpec::new(kind), WorkloadParams::dbt1());
    p.horizon_ms = 300;
    let sys = simulate(p).throughput_tps;
    let mut p = SimParams::new(
        hw,
        16,
        SystemSpec::new(SystemKind::Clock),
        WorkloadParams::dbt1(),
    );
    p.horizon_ms = 300;
    let clock = simulate(p).throughput_tps;
    sys / clock
}

fn main() {
    let base = HardwareProfile::altix350();
    let mut variants: Vec<(String, HardwareProfile)> = vec![("baseline".into(), base)];
    for scale in [0.5f64, 1.5] {
        let tag = |name: &str| format!("{name} x{scale}");
        let mut v = base;
        v.lock_acquire_ns = (base.lock_acquire_ns as f64 * scale) as u64;
        variants.push((tag("lock_acquire"), v));
        let mut v = base;
        v.cs_per_access_ns = (base.cs_per_access_ns as f64 * scale) as u64;
        variants.push((tag("cs_per_access"), v));
        let mut v = base;
        v.cs_warmup_ns = (base.cs_warmup_ns as f64 * scale) as u64;
        variants.push((tag("cs_warmup"), v));
        let mut v = base;
        v.context_switch_ns = (base.context_switch_ns as f64 * scale) as u64;
        variants.push((tag("context_switch"), v));
        let mut v = base;
        v.coherence_per_cpu = base.coherence_per_cpu * scale;
        variants.push((tag("coherence"), v));
    }

    let mut t = Table::new(
        "Robustness: headline ratios at 16 CPUs (DBT-1) under ±50% cost perturbations",
        &["variant", "pgBatPre/pgClock", "pgQ/pgClock", "claims_hold"],
    );
    let mut all_hold = true;
    for (name, hw) in &variants {
        let batpre = ratio_at_16(*hw, SystemKind::BatchingPrefetching);
        let q = ratio_at_16(*hw, SystemKind::LockPerAccess);
        let holds = batpre >= 0.9 && q <= 0.75;
        all_hold &= holds;
        t.row(vec![
            name.clone(),
            fmt(batpre),
            fmt(q),
            if holds { "yes".into() } else { "NO".into() },
        ]);
    }
    t.print();
    t.write_csv("robustness_sweep");
    println!(
        "headline claims {} under every ±50% parameter perturbation",
        if all_hold { "HOLD" } else { "DO NOT HOLD" }
    );
}
