//! **Table II**: throughput and average lock contention of `pgBatPre`
//! as the FIFO queue size grows 1 → 64 with the batch threshold kept at
//! half the queue size — Altix 350, 16 processors, all three workloads.

use bpw_bench::{fmt, Table};
use bpw_core::SystemKind;
use bpw_sim::{simulate, HardwareProfile, SimParams, SystemSpec, WorkloadParams};
use bpw_workloads::WorkloadKind;

fn main() {
    let mut tput = Table::new(
        "Table II (throughput, txn/s): queue size sweep, threshold = S/2, 16 cpus",
        &["queue_size", "DBT-1", "DBT-2", "TableScan"],
    );
    let mut cont = Table::new(
        "Table II (avg lock contention per million accesses)",
        &["queue_size", "DBT-1", "DBT-2", "TableScan"],
    );
    for exp in 0..=6 {
        let s = 1u32 << exp;
        let spec = if s == 1 {
            SystemSpec::new(SystemKind::Prefetching) // S=1: no batching possible
        } else {
            SystemSpec::with_batching(SystemKind::BatchingPrefetching, s, (s / 2).max(1))
        };
        let mut tp = vec![s.to_string()];
        let mut ct = vec![s.to_string()];
        for wl in WorkloadKind::ALL {
            let mut p = SimParams::new(
                HardwareProfile::altix350(),
                16,
                spec,
                WorkloadParams::for_kind(wl),
            );
            p.horizon_ms = 800;
            let r = simulate(p);
            tp.push(fmt(r.throughput_tps));
            ct.push(fmt(r.contentions_per_million));
        }
        tput.row(tp);
        cont.row(ct);
    }
    tput.print();
    cont.print();
    tput.write_csv("table2_throughput");
    cont.write_csv("table2_contention");
    println!(
        "Paper's observation (Table II): going from S=1 to S=8 cuts contention by\n\
         orders of magnitude and lifts throughput; beyond S~8-16 contention keeps\n\
         falling but throughput no longer improves."
    );
}
