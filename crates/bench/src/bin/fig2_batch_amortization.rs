//! **Figure 2**: "Average lock acquisition and holding time per each page
//! access with batch size varied from 1 to 64" — 2Q under DBT-1 on the
//! 16-processor Altix 350 (both axes log scale in the paper).
//!
//! Two reproductions are printed:
//! 1. the discrete-event simulator at 16 virtual CPUs (the paper's
//!    setting), and
//! 2. a real-thread measurement on this host, which reproduces the
//!    amortization (hold time / accesses) even though the host cannot
//!    supply 16 hardware threads.

use bpw_bench::{fmt, Table};
use bpw_core::{BpWrapper, SystemKind, WrapperConfig};
use bpw_replacement::{ReplacementPolicy, TwoQ};
use bpw_sim::{simulate, HardwareProfile, SimParams, SystemSpec, WorkloadParams};

fn simulated() {
    let mut t = Table::new(
        "Fig. 2 (simulated, Altix 350, 16 processors, DBT-1, 2Q): lock time per access",
        &[
            "batch_size",
            "lock_time_us_per_access",
            "accesses_per_acquisition",
        ],
    );
    for exp in 0..=6 {
        let batch = 1u32 << exp; // 1..64
        let spec = if batch == 1 {
            SystemSpec::new(SystemKind::LockPerAccess)
        } else {
            SystemSpec::with_batching(SystemKind::Batching, batch, (batch / 2).max(1))
        };
        let mut p = SimParams::new(
            HardwareProfile::altix350(),
            16,
            spec,
            WorkloadParams::dbt1(),
        );
        p.horizon_ms = 1_000;
        let r = simulate(p);
        t.row(vec![
            batch.to_string(),
            fmt(r.lock_time_per_access_us),
            fmt(r.accesses_per_acquisition),
        ]);
    }
    t.print();
    t.write_csv("fig2_simulated");
}

fn real_threads() {
    let mut t = Table::new(
        "Fig. 2 (real threads on this host, 2Q, Zipf hits): lock time per access",
        &[
            "batch_size",
            "lock_time_us_per_access",
            "acquisitions",
            "accesses",
        ],
    );
    let frames = 4096usize;
    let threads = 4;
    let per_thread = 200_000u64;
    for exp in 0..=6 {
        let batch = 1usize << exp;
        let cfg = if batch == 1 {
            WrapperConfig::lock_per_access()
        } else {
            WrapperConfig {
                queue_size: batch,
                batch_threshold: (batch / 2).max(1),
                batching: true,
                prefetching: true,
                combining: bpw_core::Combining::Off,
            }
        };
        let wrapper = BpWrapper::new(TwoQ::new(frames), cfg);
        wrapper.with_locked(|p| {
            for i in 0..frames as u64 {
                p.record_miss(i, Some(i as u32), &mut |_| true);
            }
        });
        std::thread::scope(|s| {
            for th in 0..threads {
                let wrapper = &wrapper;
                s.spawn(move || {
                    let mut h = wrapper.handle();
                    let mut x = 0x1234_5678_9ABC_DEF0u64 ^ th;
                    for _ in 0..per_thread {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let page = x % frames as u64;
                        h.record_hit(page, page as u32);
                    }
                });
            }
        });
        let snap = wrapper.lock_stats().snapshot();
        t.row(vec![
            batch.to_string(),
            fmt(snap.lock_time_per_access_ns() / 1e3),
            snap.acquisitions.to_string(),
            snap.accesses_covered.to_string(),
        ]);
    }
    t.print();
    t.write_csv("fig2_real");
}

fn main() {
    simulated();
    real_threads();
    println!(
        "Paper's observation: per-access lock time falls steeply with batch size;\n\
         a batch of 16-64 makes the acquisition cost negligible (Fig. 2, §III-A)."
    );
}
