//! Miss-path scaling: coarse (one global miss lock, the seed design)
//! vs sharded (one miss lock + free-list stripe per page-table shard),
//! under a miss-heavy workload (hit ratio <= 50%), 1..16 threads, with
//! the BP-Wrapper combining-commit ablation riding along.
//!
//! Two row kinds land in `results/miss_path_scaling.jsonl`:
//!
//! * `measured` — real threads on this host. The *counts* are
//!   scheduling-robust anywhere (per-shard spread of acquisitions,
//!   free-list steals, combining batches); the *wall clock* only shows
//!   parallel speedup when the host has cores to run on.
//! * `modeled` — a bottleneck (operational-law) projection calibrated
//!   from this host's measured single-thread costs: per-access time
//!   `t1` and the measured miss-lock critical section `c_miss`. A
//!   partition of `K` miss locks caps aggregate miss throughput at
//!   `K / (m * c_miss)` (m = miss fraction) while the coarse design
//!   caps it at `1 / (m * c_miss)`; threads add capacity `T / t1` until
//!   they hit that cap:
//!
//!   ```text
//!   X(T) = min(T / t1, K / (m * c_miss))
//!   ```
//!
//!   The same convention as the fig6/fig7 simulator: cost *shapes* from
//!   measured sections, not calibrated absolutes.
//!
//! `--quick` runs a reduced sweep and exits nonzero if the modeled
//! sharded throughput at 8 threads is not at least 2x the coarse
//! baseline — the CI regression gate for the partitioned miss path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bpw_bufferpool::{BufferPool, SimDisk, WrappedManager};
use bpw_core::WrapperConfig;
use bpw_metrics::JsonObject;
use bpw_replacement::TwoQ;

const FRAMES: usize = 512;
/// Working set 4x the pool: uniform access gives ~25% hits, well under
/// the <=50% the experiment calls for.
const WORKING_SET: u64 = 4 * FRAMES as u64;

struct Measured {
    accesses: u64,
    hits: u64,
    misses: u64,
    wall_ns: u64,
    throughput_maccs: f64,
    shards: usize,
    lock_total_acquisitions: u64,
    lock_total_contentions: u64,
    lock_total_wait_ns: u64,
    lock_total_hold_ns: u64,
    lock_max_wait_ns: u64,
    shards_touched: usize,
    free_list_steals: u64,
    combining_published: u64,
    combining_batches: u64,
}

fn run_measured(mode: &str, combining: bool, threads: u64, total_accesses: u64) -> Measured {
    let cfg = WrapperConfig::default().with_combining(combining);
    let mut pool: BufferPool<WrappedManager<TwoQ>> = BufferPool::new(
        FRAMES,
        64,
        WrappedManager::new(TwoQ::new(FRAMES), cfg),
        Arc::new(SimDisk::instant()),
    );
    if mode == "coarse" {
        pool = pool.with_miss_shards(1);
    }
    let per_thread = total_accesses / threads;
    let done = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for th in 0..threads {
            let pool = &pool;
            let done = &done;
            s.spawn(move || {
                let mut session = pool.session();
                let mut x = 0x2545_F491_4F6C_DD1Du64.wrapping_mul(th + 1);
                for _ in 0..per_thread {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let page = x % WORKING_SET;
                    let p = session.fetch(page).expect("instant disk cannot fail");
                    drop(p);
                }
                done.fetch_add(per_thread, Ordering::Relaxed);
            });
        }
    });
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let accesses = done.load(Ordering::Relaxed);
    let stats = pool.stats();
    let summary = pool.miss_lock_summary();
    let shard_snaps = pool.miss_lock_shard_snapshots();
    let counters = pool.manager().wrapper().counters();
    Measured {
        accesses,
        hits: stats.hits.load(Ordering::Relaxed),
        misses: stats.misses.load(Ordering::Relaxed),
        wall_ns,
        throughput_maccs: accesses as f64 / (wall_ns as f64 / 1e9) / 1e6,
        shards: summary.shards,
        lock_total_acquisitions: summary.total_acquisitions,
        lock_total_contentions: summary.total_contentions,
        lock_total_wait_ns: summary.total_wait_ns,
        lock_total_hold_ns: summary.total_hold_ns,
        lock_max_wait_ns: summary.max_wait_ns,
        shards_touched: shard_snaps.iter().filter(|s| s.acquisitions > 0).count(),
        free_list_steals: pool.free_list_steals(),
        combining_published: counters.published.get(),
        combining_batches: counters.combined_batches.get(),
    }
}

/// Calibration extracted from a single-thread measured run.
struct Costs {
    /// Mean per-access time, ns (everything: hit path, miss path, I/O).
    t1_ns: f64,
    /// Mean miss-lock critical section, ns (victim selection +
    /// rebinding; the I/O runs outside the lock).
    c_miss_ns: f64,
    /// Miss fraction of the workload.
    miss_fraction: f64,
}

impl Costs {
    fn from(m: &Measured) -> Costs {
        Costs {
            t1_ns: m.wall_ns as f64 / m.accesses as f64,
            c_miss_ns: m.lock_total_hold_ns as f64 / m.misses.max(1) as f64,
            miss_fraction: m.misses as f64 / m.accesses as f64,
        }
    }

    /// Bottleneck projection: threads add capacity until the miss-lock
    /// partition saturates.
    fn modeled_maccs(&self, threads: u64, shards: usize) -> f64 {
        let cpu_bound = threads as f64 / self.t1_ns;
        let serial_demand = self.miss_fraction * self.c_miss_ns;
        let lock_bound = shards as f64 / serial_demand.max(1e-9);
        cpu_bound.min(lock_bound) * 1e3 // accesses/ns -> M accesses/s
    }
}

fn measured_row(mode: &str, combining: bool, threads: u64, m: &Measured) -> String {
    let mut lock = JsonObject::new();
    lock.field_u64("shards", m.shards as u64)
        .field_u64("total_acquisitions", m.lock_total_acquisitions)
        .field_u64("total_contentions", m.lock_total_contentions)
        .field_u64("total_wait_ns", m.lock_total_wait_ns)
        .field_u64("total_hold_ns", m.lock_total_hold_ns)
        .field_u64("max_wait_ns", m.lock_max_wait_ns)
        .field_u64("shards_touched", m.shards_touched as u64);
    let mut o = JsonObject::new();
    o.field_str("kind", "measured")
        .field_str("mode", mode)
        .field_bool("combining", combining)
        .field_u64("threads", threads)
        .field_u64("frames", FRAMES as u64)
        .field_u64("working_set", WORKING_SET)
        .field_u64("accesses", m.accesses)
        .field_u64("hits", m.hits)
        .field_u64("misses", m.misses)
        .field_f64("hit_ratio", m.hits as f64 / m.accesses.max(1) as f64)
        .field_u64("wall_ns", m.wall_ns)
        .field_f64("throughput_maccs", m.throughput_maccs)
        .field_raw("miss_locks", &lock.finish())
        .field_u64("free_list_steals", m.free_list_steals)
        .field_u64("combining_published", m.combining_published)
        .field_u64("combining_batches", m.combining_batches);
    o.finish()
}

fn modeled_row(mode: &str, combining: bool, threads: u64, shards: usize, c: &Costs) -> String {
    let mut o = JsonObject::new();
    o.field_str("kind", "modeled")
        .field_str("mode", mode)
        .field_bool("combining", combining)
        .field_u64("threads", threads)
        .field_u64("shards", shards as u64)
        .field_f64("t1_ns", c.t1_ns)
        .field_f64("miss_cs_ns", c.c_miss_ns)
        .field_f64("miss_fraction", c.miss_fraction)
        .field_f64("throughput_maccs", c.modeled_maccs(threads, shards));
    o.finish()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/miss_path_scaling.jsonl".into());

    let thread_points: &[u64] = if quick { &[1, 8] } else { &[1, 2, 4, 8, 16] };
    let total_accesses: u64 = if quick { 60_000 } else { 200_000 };

    println!(
        "host: {} hardware threads | {FRAMES} frames, {WORKING_SET}-page working set, \
         {total_accesses} accesses per run",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    println!(
        "{:<8} {:<9} {:>7} {:>9} {:>10} {:>9} {:>8} {:>9} {:>10}",
        "mode",
        "combining",
        "threads",
        "hit_ratio",
        "meas_Macc",
        "shards",
        "touched",
        "steals",
        "model_Macc"
    );

    let mut lines = Vec::new();
    let mut quick_gate: Vec<(String, f64)> = Vec::new(); // (mode, modeled@8)
    for mode in ["coarse", "sharded"] {
        for combining in [false, true] {
            let mut costs: Option<Costs> = None;
            let mut shards = 1usize;
            for &threads in thread_points {
                let m = run_measured(mode, combining, threads, total_accesses);
                shards = m.shards;
                if threads == 1 {
                    costs = Some(Costs::from(&m));
                }
                let c = costs.as_ref().expect("thread_points starts at 1");
                let modeled = c.modeled_maccs(threads, m.shards);
                println!(
                    "{:<8} {:<9} {:>7} {:>9.3} {:>10.3} {:>9} {:>8} {:>9} {:>10.3}",
                    mode,
                    combining,
                    threads,
                    m.hits as f64 / m.accesses.max(1) as f64,
                    m.throughput_maccs,
                    m.shards,
                    m.shards_touched,
                    m.free_list_steals,
                    modeled
                );
                assert!(
                    m.hits as f64 / m.accesses.max(1) as f64 <= 0.5,
                    "workload must stay miss-heavy (<=50% hits)"
                );
                lines.push(measured_row(mode, combining, threads, &m));
                lines.push(modeled_row(mode, combining, threads, m.shards, c));
                if threads == 8 && !combining {
                    quick_gate.push((mode.to_string(), c.modeled_maccs(8, m.shards)));
                }
            }
            // Project the full sweep range even in --quick (from the
            // same calibration) so the artifact always carries the
            // curve's shape.
            if quick {
                let c = costs.as_ref().unwrap();
                for &t in &[2u64, 4, 16] {
                    lines.push(modeled_row(mode, combining, t, shards, c));
                }
            }
        }
    }

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    std::fs::write(&out, lines.join("\n") + "\n").unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {} rows to {out}", lines.len());

    // Regression gate: the partitioned miss path must project at least
    // 2x the coarse baseline at 8 threads (the acceptance criterion; on
    // a many-core host the measured rows show the same shape).
    let coarse8 = quick_gate
        .iter()
        .find(|(m, _)| m == "coarse")
        .map(|(_, x)| *x);
    let sharded8 = quick_gate
        .iter()
        .find(|(m, _)| m == "sharded")
        .map(|(_, x)| *x);
    if let (Some(c8), Some(s8)) = (coarse8, sharded8) {
        println!(
            "modeled @8 threads: sharded {s8:.3} Macc/s vs coarse {c8:.3} Macc/s ({:.1}x)",
            s8 / c8
        );
        if s8 < 2.0 * c8 {
            eprintln!("FAIL: sharded miss path must model >= 2x coarse at 8 threads");
            std::process::exit(1);
        }
    }
}
