//! Scaling experiment for the two contended paths the wrapper owns:
//!
//! * **commit path** (hit-heavy, working set = pool): every access is a
//!   recorded hit, so the replacement lock is the only shared resource
//!   and the combining modes differ visibly — `off` blocks at
//!   queue-full, `overflow` publishes full queues, `flat` publishes on
//!   any contended threshold crossing and drains whole slates.
//! * **miss path** (miss-heavy, working set = 4x pool): coarse (one
//!   global miss lock, the seed design) vs sharded (one miss lock +
//!   free-list stripe per page-table shard).
//!
//! Three row kinds land in `results/miss_path_scaling.jsonl`:
//!
//! * `measured` — real threads on this host, 1/2/4/8(/16) of them. The
//!   *counts* are scheduling-robust anywhere (publishes, drains,
//!   per-shard spread, free-list steals); the *wall clock* only shows
//!   parallel speedup when the host has cores to run on.
//! * `freelist` — the Treiber-stack churn microbench, padded vs dense
//!   heads (the false-sharing fix's before/after).
//! * `simulated` — the bpw-sim discrete-event model at 8/16/32 CPUs,
//!   where the combining modes separate deterministically regardless of
//!   the host. These rows replace the old closed-form `modeled` rows.
//!
//! `--quick` runs a reduced sweep and exits nonzero unless (a) the
//! sharded miss path projects >= 2x the coarse baseline at 8 threads
//! (operational-law calibration from the measured single-thread run)
//! and (b) simulated flat combining is at least as fast as overflow-only
//! publication at 8 CPUs — the CI regression gates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bpw_bufferpool::{BufferPool, SimDisk, StripedFreeList, WrappedManager};
use bpw_core::{Combining, SystemKind, WrapperConfig};
use bpw_metrics::JsonObject;
use bpw_replacement::TwoQ;
use bpw_sim::{simulate, HardwareProfile, RunReport, SimParams, SystemSpec, WorkloadParams};

const FRAMES: usize = 512;
/// Miss workload: working set 4x the pool; uniform access gives ~25%
/// hits, well under the <=50% the experiment calls for.
const MISS_WORKING_SET: u64 = 4 * FRAMES as u64;
/// Commit workload: working set == pool, so after warmup every access
/// is a hit and only the commit path is exercised.
const COMMIT_WORKING_SET: u64 = FRAMES as u64;

struct Measured {
    accesses: u64,
    hits: u64,
    misses: u64,
    wall_ns: u64,
    throughput_maccs: f64,
    shards: usize,
    lock_total_acquisitions: u64,
    lock_total_contentions: u64,
    lock_total_wait_ns: u64,
    lock_total_hold_ns: u64,
    lock_max_wait_ns: u64,
    shards_touched: usize,
    free_list_steals: u64,
    published: u64,
    publish_fallbacks: u64,
    reclaimed: u64,
    combined_batches: u64,
    combined_entries: u64,
    combine_passes: u64,
    combine_depth_peak: u64,
}

fn run_measured(
    mode: &str,
    combining: Combining,
    threads: u64,
    total_accesses: u64,
    working_set: u64,
) -> Measured {
    let cfg = WrapperConfig::default().with_combining_mode(combining);
    let mut pool: BufferPool<WrappedManager<TwoQ>> = BufferPool::new(
        FRAMES,
        64,
        WrappedManager::new(TwoQ::new(FRAMES), cfg),
        Arc::new(SimDisk::instant()),
    );
    if mode == "coarse" {
        pool = pool.with_miss_shards(1);
    }
    let warm_hits;
    let warm_misses;
    {
        // Warm the pool so a pool-sized working set runs at ~100% hits.
        let mut session = pool.session();
        for page in 0..working_set.min(FRAMES as u64) {
            drop(session.fetch(page).expect("instant disk cannot fail"));
        }
        let stats = pool.stats();
        warm_hits = stats.hits.load(Ordering::Relaxed);
        warm_misses = stats.misses.load(Ordering::Relaxed);
    }
    let per_thread = total_accesses / threads;
    let done = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for th in 0..threads {
            let pool = &pool;
            let done = &done;
            s.spawn(move || {
                let mut session = pool.session();
                let mut x = 0x2545_F491_4F6C_DD1Du64.wrapping_mul(th + 1);
                for _ in 0..per_thread {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let page = x % working_set;
                    let p = session.fetch(page).expect("instant disk cannot fail");
                    drop(p);
                }
                done.fetch_add(per_thread, Ordering::Relaxed);
            });
        }
    });
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let accesses = done.load(Ordering::Relaxed);
    let stats = pool.stats();
    let summary = pool.miss_lock_summary();
    let shard_snaps = pool.miss_lock_shard_snapshots();
    let counters = pool.manager().wrapper().counters();
    Measured {
        accesses,
        hits: stats.hits.load(Ordering::Relaxed) - warm_hits,
        misses: stats.misses.load(Ordering::Relaxed) - warm_misses,
        wall_ns,
        throughput_maccs: accesses as f64 / (wall_ns as f64 / 1e9) / 1e6,
        shards: summary.shards,
        lock_total_acquisitions: summary.total_acquisitions,
        lock_total_contentions: summary.total_contentions,
        lock_total_wait_ns: summary.total_wait_ns,
        lock_total_hold_ns: summary.total_hold_ns,
        lock_max_wait_ns: summary.max_wait_ns,
        shards_touched: shard_snaps.iter().filter(|s| s.acquisitions > 0).count(),
        free_list_steals: pool.free_list_steals(),
        published: counters.published.get(),
        publish_fallbacks: counters.publish_fallbacks.get(),
        reclaimed: counters.reclaimed.get(),
        combined_batches: counters.combined_batches.get(),
        combined_entries: counters.combined_entries.get(),
        combine_passes: counters.combine_passes.get(),
        combine_depth_peak: counters.combine_depth.peak(),
    }
}

/// Calibration extracted from a single-thread measured run.
struct Costs {
    /// Mean per-access time, ns (everything: hit path, miss path, I/O).
    t1_ns: f64,
    /// Mean miss-lock critical section, ns (victim selection +
    /// rebinding; the I/O runs outside the lock).
    c_miss_ns: f64,
    /// Miss fraction of the workload.
    miss_fraction: f64,
}

impl Costs {
    fn from(m: &Measured) -> Costs {
        Costs {
            t1_ns: m.wall_ns as f64 / m.accesses as f64,
            c_miss_ns: m.lock_total_hold_ns as f64 / m.misses.max(1) as f64,
            miss_fraction: m.misses as f64 / m.accesses as f64,
        }
    }

    /// Bottleneck projection: threads add capacity until the miss-lock
    /// partition saturates.
    fn modeled_maccs(&self, threads: u64, shards: usize) -> f64 {
        let cpu_bound = threads as f64 / self.t1_ns;
        let serial_demand = self.miss_fraction * self.c_miss_ns;
        let lock_bound = shards as f64 / serial_demand.max(1e-9);
        cpu_bound.min(lock_bound) * 1e3 // accesses/ns -> M accesses/s
    }
}

fn measured_row(
    workload: &str,
    mode: &str,
    combining: Combining,
    threads: u64,
    working_set: u64,
    m: &Measured,
) -> String {
    let mut lock = JsonObject::new();
    lock.field_u64("shards", m.shards as u64)
        .field_u64("total_acquisitions", m.lock_total_acquisitions)
        .field_u64("total_contentions", m.lock_total_contentions)
        .field_u64("total_wait_ns", m.lock_total_wait_ns)
        .field_u64("total_hold_ns", m.lock_total_hold_ns)
        .field_u64("max_wait_ns", m.lock_max_wait_ns)
        .field_u64("shards_touched", m.shards_touched as u64);
    let mut o = JsonObject::new();
    o.field_str("kind", "measured")
        .field_str("workload", workload)
        .field_str("mode", mode)
        .field_str("combining", combining.name())
        .field_u64("threads", threads)
        .field_u64("frames", FRAMES as u64)
        .field_u64("working_set", working_set)
        .field_u64("accesses", m.accesses)
        .field_u64("hits", m.hits)
        .field_u64("misses", m.misses)
        .field_f64("hit_ratio", m.hits as f64 / m.accesses.max(1) as f64)
        .field_u64("wall_ns", m.wall_ns)
        .field_f64("throughput_maccs", m.throughput_maccs)
        .field_raw("miss_locks", &lock.finish())
        .field_u64("free_list_steals", m.free_list_steals)
        .field_u64("combining_published", m.published)
        .field_u64("combining_publish_fallbacks", m.publish_fallbacks)
        .field_u64("combining_reclaimed", m.reclaimed)
        .field_u64("combining_batches", m.combined_batches)
        .field_u64("combining_entries", m.combined_entries)
        .field_u64("combining_passes", m.combine_passes)
        .field_u64("combining_depth_peak", m.combine_depth_peak);
    o.finish()
}

/// Treiber-stack churn: every thread hammers pop/push on its home
/// stripe. With dense heads, neighbouring stripes share cache lines and
/// every CAS invalidates its neighbours; padded heads give each stripe
/// its own line.
fn run_freelist(padded: bool, threads: u64, total_ops: u64) -> (u64, u64) {
    const STRIPES: usize = 8;
    let list = if padded {
        StripedFreeList::new(FRAMES, STRIPES)
    } else {
        StripedFreeList::new_dense(FRAMES, STRIPES)
    };
    let per_thread = total_ops / threads;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for th in 0..threads {
            let list = &list;
            s.spawn(move || {
                let home = th as usize % STRIPES;
                for _ in 0..per_thread {
                    if let Some(frame) = list.pop(home) {
                        list.push(home, frame);
                    }
                }
            });
        }
    });
    (t0.elapsed().as_nanos() as u64, per_thread * threads)
}

fn freelist_row(padded: bool, threads: u64, ops: u64, wall_ns: u64) -> String {
    let mut o = JsonObject::new();
    o.field_str("kind", "freelist")
        .field_str("heads", if padded { "padded" } else { "dense" })
        .field_u64("threads", threads)
        .field_u64("ops", ops)
        .field_u64("wall_ns", wall_ns)
        .field_f64("throughput_mops", ops as f64 / (wall_ns as f64 / 1e9) / 1e6);
    o.finish()
}

/// One discrete-event run: the full wrapper (batching + prefetching)
/// with small queues (S=8, T=4) on the scan workload, where the
/// replacement lock is the bottleneck and the combining modes separate.
fn run_sim(cpus: usize, mode: Combining, horizon_ms: u64) -> RunReport {
    let spec =
        SystemSpec::with_batching(SystemKind::BatchingPrefetching, 8, 4).with_combining(mode);
    let mut p = SimParams::new(
        HardwareProfile::altix350(),
        cpus,
        spec,
        WorkloadParams::tablescan(),
    );
    p.horizon_ms = horizon_ms;
    simulate(p)
}

fn sim_row(cpus: usize, mode: Combining, r: &RunReport) -> String {
    let mut o = JsonObject::new();
    o.field_str("kind", "simulated")
        .field_str("combining", mode.name())
        .field_u64("cpus", cpus as u64)
        .field_f64("throughput_tps", r.throughput_tps)
        .field_f64("contentions_per_million", r.contentions_per_million)
        .field_f64("accesses_per_acquisition", r.accesses_per_acquisition)
        .field_u64("publishes", r.publishes)
        .field_u64("combined_batches", r.combined_batches)
        .field_u64("trylock_failures", r.trylock_failures);
    o.finish()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/miss_path_scaling.jsonl".into());

    let commit_threads: &[u64] = if quick { &[1, 8] } else { &[1, 2, 4, 8] };
    let miss_threads: &[u64] = if quick { &[1, 8] } else { &[1, 2, 4, 8, 16] };
    let total_accesses: u64 = if quick { 60_000 } else { 200_000 };
    let sim_horizon_ms: u64 = if quick { 150 } else { 300 };

    println!(
        "host: {} hardware threads | {FRAMES} frames, {total_accesses} accesses per run",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let mut lines = Vec::new();

    // --- commit path: hit-heavy, combining ablation -------------------
    println!(
        "\ncommit path (working set = pool, ~100% hits):\n\
         {:<9} {:>7} {:>10} {:>9} {:>9} {:>9} {:>7} {:>6}",
        "combining", "threads", "meas_Macc", "published", "fallback", "combined", "passes", "depth"
    );
    for mode in [Combining::Off, Combining::Overflow, Combining::Flat] {
        for &threads in commit_threads {
            let m = run_measured("sharded", mode, threads, total_accesses, COMMIT_WORKING_SET);
            println!(
                "{:<9} {:>7} {:>10.3} {:>9} {:>9} {:>9} {:>7} {:>6}",
                mode.name(),
                threads,
                m.throughput_maccs,
                m.published,
                m.publish_fallbacks,
                m.combined_batches,
                m.combine_passes,
                m.combine_depth_peak
            );
            assert!(
                m.hits as f64 / m.accesses.max(1) as f64 > 0.99,
                "commit workload must stay hit-heavy"
            );
            lines.push(measured_row(
                "commit",
                "sharded",
                mode,
                threads,
                COMMIT_WORKING_SET,
                &m,
            ));
        }
    }

    // --- miss path: coarse vs sharded ---------------------------------
    println!(
        "\nmiss path (working set = 4x pool, ~25% hits):\n\
         {:<8} {:<9} {:>7} {:>9} {:>10} {:>7} {:>8} {:>9}",
        "mode", "combining", "threads", "hit_ratio", "meas_Macc", "shards", "touched", "steals"
    );
    let mut quick_gate: Vec<(String, f64)> = Vec::new(); // (mode, modeled@8)
    for mode in ["coarse", "sharded"] {
        for combining in [Combining::Off, Combining::Flat] {
            let mut costs: Option<Costs> = None;
            for &threads in miss_threads {
                let m = run_measured(mode, combining, threads, total_accesses, MISS_WORKING_SET);
                if threads == 1 {
                    costs = Some(Costs::from(&m));
                }
                println!(
                    "{:<8} {:<9} {:>7} {:>9.3} {:>10.3} {:>7} {:>8} {:>9}",
                    mode,
                    combining.name(),
                    threads,
                    m.hits as f64 / m.accesses.max(1) as f64,
                    m.throughput_maccs,
                    m.shards,
                    m.shards_touched,
                    m.free_list_steals,
                );
                assert!(
                    m.hits as f64 / m.accesses.max(1) as f64 <= 0.5,
                    "workload must stay miss-heavy (<=50% hits)"
                );
                lines.push(measured_row(
                    "miss",
                    mode,
                    combining,
                    threads,
                    MISS_WORKING_SET,
                    &m,
                ));
                if threads == 8 && combining == Combining::Off {
                    let c = costs.as_ref().expect("thread sweep starts at 1");
                    quick_gate.push((mode.to_string(), c.modeled_maccs(8, m.shards)));
                }
            }
        }
    }

    // --- free list: padded vs dense heads -----------------------------
    println!(
        "\nfree-list churn (Treiber heads):\n{:<7} {:>7} {:>10}",
        "heads", "threads", "meas_Mops"
    );
    for padded in [false, true] {
        for &threads in commit_threads {
            let (wall_ns, ops) = run_freelist(padded, threads, total_accesses);
            println!(
                "{:<7} {:>7} {:>10.3}",
                if padded { "padded" } else { "dense" },
                threads,
                ops as f64 / (wall_ns as f64 / 1e9) / 1e6
            );
            lines.push(freelist_row(padded, threads, ops, wall_ns));
        }
    }

    // --- simulated 8/16/32 CPUs ---------------------------------------
    println!(
        "\nsimulated (bpw-sim, S=8 T=4, tablescan):\n\
         {:<9} {:>5} {:>12} {:>8} {:>10} {:>9}",
        "combining", "cpus", "tps", "cpm", "publishes", "combined"
    );
    let mut sim_at = std::collections::HashMap::new();
    for mode in [Combining::Off, Combining::Overflow, Combining::Flat] {
        for cpus in [8usize, 16, 32] {
            let r = run_sim(cpus, mode, sim_horizon_ms);
            println!(
                "{:<9} {:>5} {:>12.0} {:>8.1} {:>10} {:>9}",
                mode.name(),
                cpus,
                r.throughput_tps,
                r.contentions_per_million,
                r.publishes,
                r.combined_batches
            );
            sim_at.insert((mode, cpus), r.throughput_tps);
            lines.push(sim_row(cpus, mode, &r));
        }
    }

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    std::fs::write(&out, lines.join("\n") + "\n").unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {} rows to {out}", lines.len());

    // Gate 1: the partitioned miss path must project at least 2x the
    // coarse baseline at 8 threads (operational-law calibration from
    // the measured single-thread run; on a many-core host the measured
    // rows show the same shape).
    let coarse8 = quick_gate
        .iter()
        .find(|(m, _)| m == "coarse")
        .map(|(_, x)| *x);
    let sharded8 = quick_gate
        .iter()
        .find(|(m, _)| m == "sharded")
        .map(|(_, x)| *x);
    if let (Some(c8), Some(s8)) = (coarse8, sharded8) {
        println!(
            "modeled @8 threads: sharded {s8:.3} Macc/s vs coarse {c8:.3} Macc/s ({:.1}x)",
            s8 / c8
        );
        if s8 < 2.0 * c8 {
            eprintln!("FAIL: sharded miss path must model >= 2x coarse at 8 threads");
            std::process::exit(1);
        }
    }

    // Gate 2: flat combining must not trail overflow-only publication at
    // 8 CPUs and beyond (deterministic simulator rows, so this holds on
    // any host, including single-core CI runners).
    for cpus in [8usize, 16, 32] {
        let flat = sim_at[&(Combining::Flat, cpus)];
        let over = sim_at[&(Combining::Overflow, cpus)];
        println!("simulated @{cpus} cpus: flat {flat:.0} tps vs overflow {over:.0} tps");
        if flat < over {
            eprintln!("FAIL: flat combining must be >= overflow-only at {cpus} cpus");
            std::process::exit(1);
        }
    }
}
