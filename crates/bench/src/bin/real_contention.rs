//! Real-thread measurement on **this host**: lock acquisitions, failed
//! try-locks, blocked acquisitions (the paper's "contentions") and
//! throughput for the five Table I systems, running the hit-only
//! scalability workload through the actual `bpw-core` implementation.
//!
//! Unlike wall-clock scaling (which needs the simulator on a small
//! host), these *counts* are scheduling-robust: batching divides lock
//! acquisitions by the batch size no matter how threads interleave.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bpw_bench::{fmt, Table};
use bpw_core::{BpWrapper, ClockHitPath, SystemKind, WrapperConfig};
use bpw_replacement::{ReplacementPolicy, TwoQ};

const FRAMES: usize = 8192;
const THREADS: u64 = 4;
const PER_THREAD: u64 = 500_000;

struct Row {
    acquisitions: u64,
    contentions: u64,
    trylock_failures: u64,
    throughput_maccs: f64,
}

fn run_wrapped(cfg: WrapperConfig) -> Row {
    let wrapper = BpWrapper::new(TwoQ::new(FRAMES), cfg);
    wrapper.with_locked(|p| {
        for i in 0..FRAMES as u64 {
            p.record_miss(i, Some(i as u32), &mut |_| true);
        }
    });
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for th in 0..THREADS {
            let wrapper = &wrapper;
            s.spawn(move || {
                let mut h = wrapper.handle();
                let mut x = 0xABCD_EF01_2345_6789u64 ^ th;
                for _ in 0..PER_THREAD {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let page = x % FRAMES as u64;
                    h.record_hit(page, page as u32);
                }
            });
        }
    });
    let dt = t0.elapsed().as_secs_f64();
    let snap = wrapper.lock_stats().snapshot();
    Row {
        acquisitions: snap.acquisitions,
        contentions: snap.contentions,
        trylock_failures: snap.trylock_failures,
        throughput_maccs: (THREADS * PER_THREAD) as f64 / dt / 1e6,
    }
}

fn run_clock() -> Row {
    let clock = ClockHitPath::new(FRAMES);
    let t0 = Instant::now();
    let dummy = AtomicU64::new(0);
    std::thread::scope(|s| {
        for th in 0..THREADS {
            let clock = &clock;
            let dummy = &dummy;
            s.spawn(move || {
                let mut x = 0xABCD_EF01_2345_6789u64 ^ th;
                let mut local = 0u64;
                for _ in 0..PER_THREAD {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let page = x % FRAMES as u64;
                    clock.record_hit(page as u32);
                    local ^= page;
                }
                dummy.fetch_xor(local, Ordering::Relaxed);
            });
        }
    });
    let dt = t0.elapsed().as_secs_f64();
    Row {
        acquisitions: 0,
        contentions: 0,
        trylock_failures: 0,
        throughput_maccs: (THREADS * PER_THREAD) as f64 / dt / 1e6,
    }
}

fn main() {
    let total = THREADS * PER_THREAD;
    println!(
        "host: {} hardware threads | {} worker threads x {} hit accesses on a 2Q of {} frames\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        THREADS,
        PER_THREAD,
        FRAMES
    );
    let mut t = Table::new(
        "Real-thread lock behaviour (2Q policy, hit-only workload)",
        &[
            "system",
            "lock_acquisitions",
            "contentions",
            "contentions_per_M",
            "trylock_failures",
            "throughput_Macc_per_s",
        ],
    );
    for kind in SystemKind::ALL {
        let row = match kind.wrapper_config() {
            None => run_clock(),
            Some(cfg) => run_wrapped(cfg),
        };
        t.row(vec![
            kind.name().to_owned(),
            row.acquisitions.to_string(),
            row.contentions.to_string(),
            fmt(row.contentions as f64 * 1e6 / total as f64),
            row.trylock_failures.to_string(),
            fmt(row.throughput_maccs),
        ]);
    }
    t.print();
    t.write_csv("real_contention");
    println!(
        "Expected (any host): pgQ acquires the lock once per access ({total});\n\
         pgBat/pgBatPre acquire ~1/32nd as often and block orders of magnitude less."
    );
}
