//! **Figure 7**: the same experiment as Fig. 6 on the Dell PowerEdge
//! 1900 (8 cores, hardware prefetch modules) with processors 1 -> 8.
//! The paper's finding: contention is *more* intensive here than on the
//! Altix, because the prefetcher accelerates non-critical code while the
//! random-access critical section stays slow.

use bpw_bench::scaling::scaling_figure;
use bpw_sim::HardwareProfile;

fn main() {
    scaling_figure(
        HardwareProfile::poweredge1900(),
        &[1, 2, 4, 8],
        "fig7_poweredge",
    );
}
