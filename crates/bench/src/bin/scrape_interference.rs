//! Scrape-under-load interference: what the seqlock snapshot cache buys
//! the data path when STATS/METRICS scrapers run hot.
//!
//! A scrape used to re-aggregate on every request: load every pool
//! counter, merge every lock-stat family, walk the per-shard miss-lock
//! snapshots. Each of those loads drags a write-hot cache line into
//! shared state, so the next worker increment pays a re-upgrade to
//! exclusive — monitoring taxing the thing it monitors. The server now
//! fronts that walk with `bpw_metrics::SnapshotCache`: one walk per TTL
//! regardless of scraper count, every other scrape a seqlock read that
//! writes no shared memory at all.
//!
//! This bench reproduces both sides with the pool-level walk the server
//! performs: hit-heavy workers hammer `fetch` while scraper threads
//! scrape at a fixed interval in one of three modes:
//!
//! * `none`     — no scrapers (the clean baseline);
//! * `uncached` — every scrape runs the full aggregation walk (the
//!   pre-PR behaviour);
//! * `cached`   — scrapes go through `SnapshotCache` with the server's
//!   10ms TTL (the post-PR behaviour).
//!
//! Rows land in `results/scrape_interference.jsonl`: worker throughput
//! per mode (the interference) plus per-scrape cost and how many walks
//! actually ran (the amortization). No CI gate — interference is a
//! host-sensitive cache effect; the numbers are recorded in
//! EXPERIMENTS.md instead.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bpw_bufferpool::{BufferPool, ReplacementManager, SimDisk, WrappedManager};
use bpw_core::WrapperConfig;
use bpw_metrics::{JsonObject, LockShardSummary, LockSnapshot, SnapshotCache};
use bpw_replacement::TwoQ;

const FRAMES: usize = 512;
const WORKERS: u64 = 4;
const SCRAPERS: u64 = 2;
/// Aggressive-but-plausible scrape cadence (a dashboard polling hard).
const SCRAPE_INTERVAL: Duration = Duration::from_micros(200);
/// The server's STATS_TTL.
const CACHE_TTL: Duration = Duration::from_millis(10);

/// The pool-side scalar snapshot the server aggregates per scrape.
#[derive(Debug, Clone, Copy, Default)]
struct PoolSnap {
    hits: u64,
    misses: u64,
    writebacks: u64,
    pin_cas_retries: u64,
    page_table_fallbacks: u64,
    free_list_steals: u64,
    lock: LockSnapshot,
    miss_lock: LockSnapshot,
    miss_locks: LockShardSummary,
}

type Pool = BufferPool<WrappedManager<TwoQ>>;

/// The full aggregation walk: every load here touches a counter the
/// workers are concurrently incrementing.
fn walk(pool: &Pool) -> PoolSnap {
    let stats = pool.stats();
    PoolSnap {
        hits: stats.hits.load(Ordering::Relaxed),
        misses: stats.misses.load(Ordering::Relaxed),
        writebacks: stats.writebacks.load(Ordering::Relaxed),
        pin_cas_retries: stats.pin_cas_retries.load(Ordering::Relaxed),
        page_table_fallbacks: pool.page_table_fallback_reads(),
        free_list_steals: pool.free_list_steals(),
        lock: pool.manager().lock_snapshot(),
        miss_lock: pool.miss_lock_snapshot(),
        miss_locks: pool.miss_lock_summary(),
    }
}

struct Run {
    worker_ops: u64,
    wall_ns: u64,
    worker_mops: f64,
    scrapes: u64,
    walks: u64,
    mean_scrape_ns: u64,
}

fn run(mode: &'static str, ops_per_worker: u64) -> Run {
    let pool: Pool = BufferPool::new(
        FRAMES,
        64,
        WrappedManager::new(TwoQ::new(FRAMES), WrapperConfig::default()),
        Arc::new(SimDisk::instant()),
    );
    {
        // Warm: working set == pool, so the measured loop is ~all hits.
        let mut session = pool.session();
        for page in 0..FRAMES as u64 {
            drop(session.fetch(page).expect("instant disk cannot fail"));
        }
    }
    let cache: SnapshotCache<PoolSnap> = SnapshotCache::default();
    let epoch = Instant::now();
    let stop = AtomicBool::new(false);
    let scrapes = AtomicU64::new(0);
    let scrape_ns = AtomicU64::new(0);
    let walks = AtomicU64::new(0);
    let t0 = Instant::now();
    let mut wall_ns = 0u64;
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..WORKERS)
            .map(|th| {
                let pool = &pool;
                s.spawn(move || {
                    let mut session = pool.session();
                    let mut x = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(th + 1);
                    for _ in 0..ops_per_worker {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        drop(
                            session
                                .fetch(x % FRAMES as u64)
                                .expect("instant disk cannot fail"),
                        );
                    }
                })
            })
            .collect();
        if mode != "none" {
            for _ in 0..SCRAPERS {
                let pool = &pool;
                let cache = &cache;
                let (stop, scrapes, scrape_ns, walks) = (&stop, &scrapes, &scrape_ns, &walks);
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let t = Instant::now();
                        let snap = if mode == "cached" {
                            cache.get(
                                epoch.elapsed().as_nanos() as u64,
                                CACHE_TTL.as_nanos() as u64,
                                || {
                                    walks.fetch_add(1, Ordering::Relaxed);
                                    walk(pool)
                                },
                            )
                        } else {
                            walks.fetch_add(1, Ordering::Relaxed);
                            walk(pool)
                        };
                        // Consume every field so the walk cannot be
                        // optimized out.
                        std::hint::black_box(
                            snap.hits
                                + snap.misses
                                + snap.writebacks
                                + snap.pin_cas_retries
                                + snap.page_table_fallbacks
                                + snap.free_list_steals
                                + snap.lock.acquisitions
                                + snap.miss_lock.acquisitions
                                + snap.miss_locks.total_acquisitions,
                        );
                        scrape_ns.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        scrapes.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(SCRAPE_INTERVAL);
                    }
                });
            }
        }
        // Time the workers only; scrapers keep polling until the last
        // worker is done, then drain on the stop flag.
        for w in workers {
            w.join().expect("worker panicked");
        }
        wall_ns = t0.elapsed().as_nanos() as u64;
        stop.store(true, Ordering::Relaxed);
    });
    let worker_ops = WORKERS * ops_per_worker;
    let scrapes = scrapes.load(Ordering::Relaxed);
    Run {
        worker_ops,
        wall_ns,
        worker_mops: worker_ops as f64 / (wall_ns as f64 / 1e9) / 1e6,
        scrapes,
        walks: walks.load(Ordering::Relaxed),
        mean_scrape_ns: scrape_ns.load(Ordering::Relaxed) / scrapes.max(1),
    }
}

fn row(mode: &str, r: &Run) -> String {
    let mut o = JsonObject::new();
    o.field_str("kind", "scrape")
        .field_str("mode", mode)
        .field_u64("workers", WORKERS)
        .field_u64("scrapers", if mode == "none" { 0 } else { SCRAPERS })
        .field_u64("scrape_interval_us", SCRAPE_INTERVAL.as_micros() as u64)
        .field_u64("cache_ttl_ms", CACHE_TTL.as_millis() as u64)
        .field_u64("frames", FRAMES as u64)
        .field_u64("worker_ops", r.worker_ops)
        .field_u64("wall_ns", r.wall_ns)
        .field_f64("worker_mops", r.worker_mops)
        .field_u64("scrapes", r.scrapes)
        .field_u64("aggregation_walks", r.walks)
        .field_u64("mean_scrape_ns", r.mean_scrape_ns);
    o.finish()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/scrape_interference.jsonl".into());
    let ops_per_worker: u64 = if quick { 500_000 } else { 2_000_000 };

    println!(
        "host: {} hardware threads | {WORKERS} workers x {ops_per_worker} hits, \
         {SCRAPERS} scrapers @ {}us",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        SCRAPE_INTERVAL.as_micros()
    );
    println!(
        "\n{:<9} {:>12} {:>9} {:>7} {:>15}",
        "mode", "worker_Mops", "scrapes", "walks", "mean_scrape_ns"
    );
    let mut lines = Vec::new();
    for mode in ["none", "uncached", "cached"] {
        let r = run(mode, ops_per_worker);
        println!(
            "{:<9} {:>12.3} {:>9} {:>7} {:>15}",
            mode, r.worker_mops, r.scrapes, r.walks, r.mean_scrape_ns
        );
        lines.push(row(mode, &r));
    }

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    std::fs::write(&out, lines.join("\n") + "\n").unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {} rows to {out}", lines.len());
}
