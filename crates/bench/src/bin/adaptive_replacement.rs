//! Adaptation-lag experiment for the online advisor + hot-swap layer:
//! how quickly does expert selection move a live pool onto the right
//! policy when the workload changes shape under it?
//!
//! One adaptive pool (a [`SwapManager`] over a BP-wrapped incumbent,
//! fed by the fetch path's [`SampleTap`]) runs a three-phase trace
//! against four static baselines replayed through [`CacheSim`] (the
//! hit-ratio-neutral shadow — see `tests/hit_ratio_neutrality.rs`):
//!
//! * `stationary` — Zipf(θ=0.9) over a pool-sized region: the working
//!   set fits, every candidate scores ~1.0, and the advisor has nothing
//!   to adapt to. It must not churn or hurt.
//! * `shift` — the same Zipf shape over a disjoint region: a working-set
//!   move that re-warms the pool but calls for no policy change (every
//!   expert's score collapses and recovers together).
//! * `storm` — a 512-page hot set (1-in-4) interleaved with an endless
//!   sequential scan (3-in-4). The hot reuse distance (~2K distinct
//!   pages) overflows the 1K-frame pool, so the LRU incumbent
//!   collapses while a scan-resistant policy (LIRS) holds the hot set.
//!   The advisor's shadow caches see the same collapse through the
//!   sample tap and must hot-swap the live manager mid-storm.
//!
//! Rows land in `results/adaptive_replacement.jsonl`: one per
//! (policy, phase) with hit ratios, one per adoption event with the
//! access index it landed at, and a summary row with the measured
//! **adaptation lag**: accesses from storm onset until the live policy
//! is storm-capable (static storm hit ratio within 80% of the best
//! candidate's) — zero if the advisor already sits on one.
//!
//! `--quick` runs the same trace and exits nonzero unless (a) the
//! adaptive pool stays within 5% of the best static policy on the
//! stationary phase (adaptivity must be ~free when there is nothing to
//! adapt to), (b) an adoption lands within the lag budget of storm
//! onset, and (c) the adaptive pool beats the static incumbent on the
//! storm phase — the CI regression gates for the advisor tier.

use std::sync::Arc;
use std::time::Instant;

use bpw_bufferpool::{BufferPool, ReplacementManager, SimDisk, SwapManager, WrappedManager};
use bpw_core::WrapperConfig;
use bpw_metrics::JsonObject;
use bpw_replacement::{Advisor, AdvisorConfig, CacheSim, PolicyKind, SampleTap};
use bpw_workloads::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FRAMES: usize = 1024;
const PAGE_SIZE: usize = 64;
/// Zipf universe for the stationary and shift phases: exactly the pool,
/// so the working set fits and every candidate ties near 1.0.
const ZIPF_PAGES: u64 = FRAMES as u64;
const ZIPF_THETA: f64 = 0.9;
/// Storm hot set: reuse distance 4x its size (~2K distinct pages), past
/// the pool's capacity — recency alone cannot hold it.
const HOT_PAGES: u64 = 512;
/// The policies the advisor shadows; `INCUMBENT` is live at start.
const CANDIDATES: [PolicyKind; 4] = [
    PolicyKind::Lru,
    PolicyKind::TwoQ,
    PolicyKind::Lirs,
    PolicyKind::Arc,
];
const INCUMBENT: PolicyKind = PolicyKind::Lru;
/// Accesses between advisor steps (tap drain + nominate check).
const STEP: u64 = 2_048;
/// Gate: an adoption must land within this many accesses of storm
/// onset. Generous — the measured lag is typically a small fraction.
const LAG_BUDGET: u64 = 120_000;

/// Phase boundaries (name, accesses).
fn phases(quick: bool) -> [(&'static str, u64); 3] {
    if quick {
        [
            ("stationary", 60_000),
            ("shift", 60_000),
            ("storm", 160_000),
        ]
    } else {
        [
            ("stationary", 120_000),
            ("shift", 120_000),
            ("storm", 240_000),
        ]
    }
}

/// The full trace, phase-concatenated, deterministic for a given seed.
fn build_trace(quick: bool) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(0xADA7);
    let zipf = Zipf::new(ZIPF_PAGES, ZIPF_THETA);
    let [(_, n_stat), (_, n_shift), (_, n_storm)] = phases(quick);
    let mut trace = Vec::with_capacity((n_stat + n_shift + n_storm) as usize);
    for _ in 0..n_stat {
        trace.push(zipf.sample(&mut rng));
    }
    // Disjoint region: same skew, entirely new pages.
    for _ in 0..n_shift {
        trace.push(500_000 + zipf.sample(&mut rng));
    }
    // Hot set round-robin (~4x reuse distance) + endless scan. The
    // interleave is randomized (p=1/4 hot), not strided: a fixed stride
    // can alias with the tap's 1-in-N sampling and hide the hot set
    // from the shadow caches entirely.
    let mut scan = 2_000_000u64;
    let mut hot = 0u64;
    for _ in 0..n_storm {
        if rng.gen_range(0..4u32) == 0 {
            trace.push(1_000_000 + hot % HOT_PAGES);
            hot += 1;
        } else {
            trace.push(scan);
            scan += 1;
        }
    }
    trace
}

fn wrapped(kind: PolicyKind, frames: usize) -> Box<dyn ReplacementManager> {
    Box::new(WrappedManager::new(
        kind.build(frames),
        WrapperConfig::default(),
    ))
}

struct Adoption {
    access_index: u64,
    phase: &'static str,
    from: PolicyKind,
    to: PolicyKind,
    generation: u64,
}

struct AdaptiveRun {
    /// Per-phase (hits, accesses).
    phase_hits: Vec<(u64, u64)>,
    adoptions: Vec<Adoption>,
    swaps: u64,
    pages_transferred: u64,
    advice_recovered: u64,
    tap_pushed: u64,
    tap_dropped: u64,
    wall_ns: u64,
}

fn run_adaptive(trace: &[u64], quick: bool) -> AdaptiveRun {
    let cfg = AdvisorConfig {
        shadow_frames: FRAMES,
        window: 256,
        sample_period: 2,
        ..AdvisorConfig::default()
    };
    let tap = Arc::new(SampleTap::new(cfg.sample_period, 8_192));
    let mut advisor = Advisor::new(&CANDIDATES, INCUMBENT, cfg);
    let pool = BufferPool::new(
        FRAMES,
        PAGE_SIZE,
        SwapManager::new(wrapped(INCUMBENT, FRAMES)),
        Arc::new(SimDisk::instant()),
    )
    .with_sample_tap(Arc::clone(&tap));

    let mut phase_hits = Vec::new();
    let mut adoptions = Vec::new();
    let mut incumbent = INCUMBENT;
    let mut sampled = Vec::new();
    let mut idx = 0u64;
    let t0 = Instant::now();
    let mut session = pool.session();
    for (phase, len) in phases(quick) {
        let h0 = pool.stats().hits.load(std::sync::atomic::Ordering::Relaxed);
        for _ in 0..len {
            drop(session.fetch(trace[idx as usize]).expect("instant disk"));
            idx += 1;
            if idx.is_multiple_of(STEP) {
                tap.drain(&mut sampled);
                for &p in &sampled {
                    advisor.observe(p);
                }
                sampled.clear();
                if let Some(kind) = advisor.nominate() {
                    let report = pool
                        .swap_manager(wrapped(kind, FRAMES))
                        .expect("SwapManager pools accept swaps");
                    advisor.adopt(kind);
                    adoptions.push(Adoption {
                        access_index: idx,
                        phase,
                        from: incumbent,
                        to: kind,
                        generation: report.generation,
                    });
                    incumbent = kind;
                }
            }
        }
        let h1 = pool.stats().hits.load(std::sync::atomic::Ordering::Relaxed);
        phase_hits.push((h1 - h0, len));
    }
    drop(session);
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let mgr = pool.manager();
    AdaptiveRun {
        phase_hits,
        adoptions,
        swaps: mgr.swaps(),
        pages_transferred: mgr.pages_transferred(),
        advice_recovered: mgr.advice_recovered(),
        tap_pushed: tap.pushed(),
        tap_dropped: tap.dropped(),
        wall_ns,
    }
}

/// Static baseline: the whole trace through one policy, per-phase hits.
fn run_static(kind: PolicyKind, trace: &[u64], quick: bool) -> Vec<(u64, u64)> {
    let mut sim = CacheSim::new(kind.build(FRAMES));
    let mut out = Vec::new();
    let mut idx = 0usize;
    for (_, len) in phases(quick) {
        let mut hits = 0u64;
        for _ in 0..len {
            if sim.access(trace[idx]) {
                hits += 1;
            }
            idx += 1;
        }
        out.push((hits, len));
    }
    out
}

fn hr(hits: u64, total: u64) -> f64 {
    hits as f64 / total.max(1) as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/adaptive_replacement.jsonl".into());

    let trace = build_trace(quick);
    let phase_names: Vec<&str> = phases(quick).iter().map(|&(n, _)| n).collect();
    let storm_start: u64 = phases(quick)[..2].iter().map(|&(_, n)| n).sum();

    println!(
        "{FRAMES} frames | {} accesses ({}) | incumbent {} over candidates {:?}",
        trace.len(),
        phase_names.join(" -> "),
        INCUMBENT.name(),
        CANDIDATES.map(|k| k.name()),
    );

    let mut lines = Vec::new();
    let mut static_hr: std::collections::HashMap<(&str, &str), f64> =
        std::collections::HashMap::new();

    println!(
        "\n{:<10} {:>11} {:>9} {:>9}",
        "policy", "stationary", "shift", "storm"
    );
    for kind in CANDIDATES {
        let per_phase = run_static(kind, &trace, quick);
        let mut cells = Vec::new();
        for (i, &(hits, total)) in per_phase.iter().enumerate() {
            let ratio = hr(hits, total);
            static_hr.insert((kind.name(), phase_names[i]), ratio);
            cells.push(format!("{ratio:>9.4}"));
            let mut o = JsonObject::new();
            o.field_str("experiment", "adaptive_replacement")
                .field_str("mode", "static")
                .field_str("policy", kind.name())
                .field_str("phase", phase_names[i])
                .field_u64("accesses", total)
                .field_u64("hits", hits)
                .field_f64("hit_ratio", ratio);
            lines.push(o.finish());
        }
        println!(
            "{:<10} {:>11} {} {}",
            kind.name(),
            cells[0],
            cells[1],
            cells[2]
        );
    }

    let run = run_adaptive(&trace, quick);
    let mut adaptive_hr = std::collections::HashMap::new();
    let mut cells = Vec::new();
    for (i, &(hits, total)) in run.phase_hits.iter().enumerate() {
        let ratio = hr(hits, total);
        adaptive_hr.insert(phase_names[i], ratio);
        cells.push(format!("{ratio:>9.4}"));
        let mut o = JsonObject::new();
        o.field_str("experiment", "adaptive_replacement")
            .field_str("mode", "adaptive")
            .field_str("policy", "advisor")
            .field_str("phase", phase_names[i])
            .field_u64("accesses", total)
            .field_u64("hits", hits)
            .field_f64("hit_ratio", ratio);
        lines.push(o.finish());
    }
    println!(
        "{:<10} {:>11} {} {}",
        "adaptive", cells[0], cells[1], cells[2]
    );

    println!();
    for a in &run.adoptions {
        println!(
            "adoption @ {:>7} ({}): {} -> {} (generation {})",
            a.access_index,
            a.phase,
            a.from.name(),
            a.to.name(),
            a.generation
        );
        let mut o = JsonObject::new();
        o.field_str("experiment", "adaptive_replacement")
            .field_str("mode", "adoption")
            .field_u64("access_index", a.access_index)
            .field_str("phase", a.phase)
            .field_str("from", a.from.name())
            .field_str("to", a.to.name())
            .field_u64("generation", a.generation);
        lines.push(o.finish());
    }

    // Adaptation lag: storm onset until the live policy is
    // storm-capable (static storm score within 80% of the best
    // candidate's). Zero if the advisor already sits on one at onset.
    let best_storm = CANDIDATES
        .iter()
        .map(|k| static_hr[&(k.name(), "storm")])
        .fold(0.0f64, f64::max);
    let storm_capable = |k: PolicyKind| static_hr[&(k.name(), "storm")] >= 0.8 * best_storm;
    let live_at_onset = run
        .adoptions
        .iter()
        .take_while(|a| a.access_index <= storm_start)
        .last()
        .map(|a| a.to)
        .unwrap_or(INCUMBENT);
    let lag = if storm_capable(live_at_onset) {
        Some(0)
    } else {
        run.adoptions
            .iter()
            .find(|a| a.access_index > storm_start && storm_capable(a.to))
            .map(|a| a.access_index - storm_start)
    };
    match lag {
        Some(0) => println!(
            "\nadaptation lag: 0 (already on storm-capable {} at onset)",
            live_at_onset.name()
        ),
        Some(lag) => println!("\nadaptation lag: {lag} accesses from storm onset"),
        None => println!("\nadaptation lag: live policy never became storm-capable"),
    }

    let mut o = JsonObject::new();
    o.field_str("experiment", "adaptive_replacement")
        .field_str("mode", "summary")
        .field_bool("quick", quick)
        .field_u64("frames", FRAMES as u64)
        .field_u64("storm_start", storm_start)
        .field_u64("adaptation_lag_accesses", lag.unwrap_or(u64::MAX))
        .field_u64("lag_budget", LAG_BUDGET)
        .field_u64("adoptions", run.adoptions.len() as u64)
        .field_u64("swaps", run.swaps)
        .field_u64("pages_transferred", run.pages_transferred)
        .field_u64("advice_recovered", run.advice_recovered)
        .field_u64("tap_pushed", run.tap_pushed)
        .field_u64("tap_dropped", run.tap_dropped)
        .field_u64("wall_ns", run.wall_ns);
    lines.push(o.finish());

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    std::fs::write(&out, lines.join("\n") + "\n").unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {} rows to {out}", lines.len());

    // Gates (enforced under --quick, reported always).
    let best_stationary = CANDIDATES
        .iter()
        .map(|k| static_hr[&(k.name(), "stationary")])
        .fold(0.0f64, f64::max);
    let adaptive_stationary = adaptive_hr["stationary"];
    let adaptive_storm = adaptive_hr["storm"];
    let incumbent_storm = static_hr[&(INCUMBENT.name(), "storm")];
    println!(
        "gates: stationary {adaptive_stationary:.4} vs best static {best_stationary:.4} | \
         lag {:?} (budget {LAG_BUDGET}) | storm {adaptive_storm:.4} vs static {} {incumbent_storm:.4}",
        lag,
        INCUMBENT.name()
    );
    let mut failed = false;
    if adaptive_stationary < 0.95 * best_stationary {
        eprintln!(
            "FAIL: adaptive pool must stay within 5% of the best static policy when stationary"
        );
        failed = true;
    }
    match lag {
        Some(lag) if lag <= LAG_BUDGET => {}
        _ => {
            eprintln!("FAIL: no adoption within {LAG_BUDGET} accesses of storm onset");
            failed = true;
        }
    }
    if adaptive_storm <= incumbent_storm + 0.02 {
        eprintln!(
            "FAIL: adaptive pool must clearly beat the static {} incumbent under the scan storm",
            INCUMBENT.name()
        );
        failed = true;
    }
    if quick && failed {
        std::process::exit(1);
    }
}
