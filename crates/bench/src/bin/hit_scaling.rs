//! Hit-path scaling: what the packed-atomic descriptor header buys over
//! the seed's per-frame mutex, isolated from the rest of the pool.
//!
//! A cache hit is lookup + pin + unpin. After the page-table lookup went
//! optimistic, the pin pair is the only shared-memory traffic left, so
//! this bench hammers exactly that: each thread draws frames from a
//! Zipf(θ=0.99) stream (hot frames shared by all threads, the worst
//! realistic contention shape) and does `try_pin` + `unpin` against one
//! of two descriptor kinds:
//!
//! * `atomic` — [`BufferDesc`]: one CAS to pin, one CAS to unpin;
//! * `mutex` — [`MutexDesc`], the seed baseline: a `parking_lot::Mutex`
//!   acquire + release around each of pin *and* unpin (4 shared RMWs).
//!
//! Each kind runs in two layouts: `padded` (`CachePadded`, one line per
//! descriptor — what the pool uses) and `dense` (contiguous `Vec`,
//! ~2-3 descriptors per line), so the false-sharing component is
//! measured separately from the lock-vs-CAS component.
//!
//! Rows land in `results/hit_path_scaling.jsonl`. `--quick` runs a
//! reduced sweep and exits nonzero unless the padded atomic descriptor
//! is at least as fast as the padded mutex baseline at 8 threads — the
//! CI regression gate for the lock-free hit path.

use std::time::Instant;

use bpw_bufferpool::{BufferDesc, MutexDesc};
use bpw_core::CachePadded;
use bpw_metrics::JsonObject;
use bpw_workloads::{Workload, ZipfWorkload};

const FRAMES: usize = 512;
/// YCSB's default hot-spot skew: a handful of frames soak up most pins.
const THETA: f64 = 0.99;

/// A frame array the bench can pin against; implementations differ only
/// in synchronization (CAS vs mutex) and layout (padded vs dense).
trait DescArray: Sync {
    /// Pin frame `i` (retrying if contention exhausts the bounded CAS
    /// loop), then unpin it. Returns CAS retries spent (0 for mutex).
    fn pin_unpin(&self, i: usize) -> u64;
}

fn init_state(s: &mut bpw_bufferpool::DescState, tag: u64) {
    s.tag = tag;
    s.valid = true;
}

struct PaddedAtomic(Vec<CachePadded<BufferDesc>>);
struct DenseAtomic(Vec<BufferDesc>);
struct PaddedMutex(Vec<CachePadded<MutexDesc>>);
struct DenseMutex(Vec<MutexDesc>);

fn atomic_pin_unpin(d: &BufferDesc, i: usize) -> u64 {
    let mut retries = 0u64;
    loop {
        let a = d.try_pin(i as u64);
        retries += u64::from(a.retries);
        if a.pinned {
            break;
        }
        // Only pin/unpin traffic runs here (no retags, no latch), so a
        // failed attempt means the bounded loop hit MAX_PIN_RETRIES
        // under contention; redo as a real caller would redo the lookup.
        std::hint::spin_loop();
    }
    d.unpin();
    retries
}

fn mutex_pin_unpin(d: &MutexDesc, i: usize) -> u64 {
    assert!(d.try_pin(i as u64), "frame is always valid in this bench");
    d.unpin();
    0
}

impl DescArray for PaddedAtomic {
    fn pin_unpin(&self, i: usize) -> u64 {
        atomic_pin_unpin(&self.0[i], i)
    }
}
impl DescArray for DenseAtomic {
    fn pin_unpin(&self, i: usize) -> u64 {
        atomic_pin_unpin(&self.0[i], i)
    }
}
impl DescArray for PaddedMutex {
    fn pin_unpin(&self, i: usize) -> u64 {
        mutex_pin_unpin(&self.0[i], i)
    }
}
impl DescArray for DenseMutex {
    fn pin_unpin(&self, i: usize) -> u64 {
        mutex_pin_unpin(&self.0[i], i)
    }
}

fn build(desc: &str, layout: &str) -> Box<dyn DescArray> {
    match (desc, layout) {
        ("atomic", "padded") => Box::new(PaddedAtomic(
            (0..FRAMES)
                .map(|i| {
                    let d = BufferDesc::new();
                    init_state(&mut d.lock(), i as u64);
                    CachePadded::new(d)
                })
                .collect(),
        )),
        ("atomic", "dense") => Box::new(DenseAtomic(
            (0..FRAMES)
                .map(|i| {
                    let d = BufferDesc::new();
                    init_state(&mut d.lock(), i as u64);
                    d
                })
                .collect(),
        )),
        ("mutex", "padded") => Box::new(PaddedMutex(
            (0..FRAMES)
                .map(|i| {
                    let d = MutexDesc::new();
                    init_state(&mut d.lock(), i as u64);
                    CachePadded::new(d)
                })
                .collect(),
        )),
        ("mutex", "dense") => Box::new(DenseMutex(
            (0..FRAMES)
                .map(|i| {
                    let d = MutexDesc::new();
                    init_state(&mut d.lock(), i as u64);
                    d
                })
                .collect(),
        )),
        _ => unreachable!("desc/layout combinations are enumerated above"),
    }
}

/// Per-thread Zipf frame sequences, drawn outside the timed region so
/// the measured loop is pure pin/unpin.
fn zipf_sequences(threads: u64, per_thread: u64) -> Vec<Vec<usize>> {
    let workload = ZipfWorkload::new(FRAMES as u64, THETA, 16);
    (0..threads)
        .map(|th| {
            let mut stream = workload.stream(th as usize, 0x417_5CA1E);
            let mut frames = Vec::with_capacity(per_thread as usize);
            let mut txn = Vec::new();
            while frames.len() < per_thread as usize {
                txn.clear();
                stream.next_transaction(&mut txn);
                frames.extend(txn.iter().map(|&p| p as usize));
            }
            frames.truncate(per_thread as usize);
            frames
        })
        .collect()
}

struct Run {
    ops: u64,
    wall_ns: u64,
    throughput_mops: f64,
    cas_retries: u64,
}

fn run(desc: &str, layout: &str, threads: u64, total_ops: u64) -> Run {
    let array = build(desc, layout);
    let per_thread = total_ops / threads;
    let seqs = zipf_sequences(threads, per_thread);
    let retries = std::sync::atomic::AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for seq in &seqs {
            let array = &*array;
            let retries = &retries;
            s.spawn(move || {
                let mut r = 0u64;
                for &frame in seq {
                    r += array.pin_unpin(frame);
                }
                retries.fetch_add(r, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let ops = per_thread * threads;
    Run {
        ops,
        wall_ns,
        throughput_mops: ops as f64 / (wall_ns as f64 / 1e9) / 1e6,
        cas_retries: retries.load(std::sync::atomic::Ordering::Relaxed),
    }
}

fn row(desc: &str, layout: &str, threads: u64, r: &Run) -> String {
    let mut o = JsonObject::new();
    o.field_str("kind", "descriptor")
        .field_str("desc", desc)
        .field_str("layout", layout)
        .field_u64("threads", threads)
        .field_u64("frames", FRAMES as u64)
        .field_f64("zipf_theta", THETA)
        .field_u64("ops", r.ops)
        .field_u64("wall_ns", r.wall_ns)
        .field_f64("throughput_mops", r.throughput_mops)
        .field_u64("pin_cas_retries", r.cas_retries);
    o.finish()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/hit_path_scaling.jsonl".into());

    let thread_sweep: &[u64] = if quick { &[1, 8] } else { &[1, 2, 4, 8] };
    let total_ops: u64 = if quick { 800_000 } else { 4_000_000 };

    println!(
        "host: {} hardware threads | {FRAMES} frames, Zipf θ={THETA}, {total_ops} pin/unpin pairs per run",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    println!(
        "\n{:<7} {:<7} {:>7} {:>10} {:>12}",
        "desc", "layout", "threads", "meas_Mops", "cas_retries"
    );
    let mut lines = Vec::new();
    let mut at8 = std::collections::HashMap::new();
    for desc in ["atomic", "mutex"] {
        for layout in ["padded", "dense"] {
            for &threads in thread_sweep {
                let r = run(desc, layout, threads, total_ops);
                println!(
                    "{:<7} {:<7} {:>7} {:>10.3} {:>12}",
                    desc, layout, threads, r.throughput_mops, r.cas_retries
                );
                lines.push(row(desc, layout, threads, &r));
                if threads == 8 {
                    at8.insert((desc, layout), r.throughput_mops);
                }
            }
        }
    }

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    std::fs::write(&out, lines.join("\n") + "\n").unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {} rows to {out}", lines.len());

    // Gate: the packed-atomic descriptor must not lose to the mutex
    // baseline at 8 threads (both in the pool's padded layout). A small
    // tolerance would hide a real regression — the atomic path's margin
    // is large (2 CAS vs 4 lock RMWs per pair), so demand >= 1.0x flat.
    let atomic8 = at8[&("atomic", "padded")];
    let mutex8 = at8[&("mutex", "padded")];
    println!(
        "@8 threads (padded): atomic {atomic8:.3} Mops vs mutex {mutex8:.3} Mops ({:.2}x)",
        atomic8 / mutex8
    );
    if atomic8 < mutex8 {
        eprintln!("FAIL: packed-atomic pin path must be >= the mutex baseline at 8 threads");
        std::process::exit(1);
    }
}
