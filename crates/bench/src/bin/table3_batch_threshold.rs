//! **Table III**: throughput and average lock contention of `pgBatPre`
//! as the batch threshold grows 1 → 64 with the queue size fixed at 64 —
//! Altix 350, 16 processors, all three workloads.
//!
//! The paper's non-obvious finding: contention *decreases* as T rises
//! from 1 to ~32 (premature tiny commits waste TryLock chances), then
//! increases again as T approaches S (no headroom left for TryLock, so
//! the blocking `Lock()` path dominates at T = S = 64).

use bpw_bench::{fmt, Table};
use bpw_core::SystemKind;
use bpw_sim::{simulate, HardwareProfile, SimParams, SystemSpec, WorkloadParams};
use bpw_workloads::WorkloadKind;

fn main() {
    let mut tput = Table::new(
        "Table III (throughput, txn/s): threshold sweep, S = 64, 16 cpus",
        &["threshold", "DBT-1", "DBT-2", "TableScan"],
    );
    let mut cont = Table::new(
        "Table III (avg lock contention per million accesses)",
        &["threshold", "DBT-1", "DBT-2", "TableScan"],
    );
    for t in [1u32, 2, 4, 8, 16, 32, 48, 64] {
        let spec = SystemSpec::with_batching(SystemKind::BatchingPrefetching, 64, t);
        let mut tp = vec![t.to_string()];
        let mut ct = vec![t.to_string()];
        for wl in WorkloadKind::ALL {
            let mut p = SimParams::new(
                HardwareProfile::altix350(),
                16,
                spec,
                WorkloadParams::for_kind(wl),
            );
            p.horizon_ms = 800;
            let r = simulate(p);
            tp.push(fmt(r.throughput_tps));
            ct.push(fmt(r.contentions_per_million));
        }
        tput.row(tp);
        cont.row(ct);
    }
    tput.print();
    cont.print();
    tput.write_csv("table3_throughput");
    cont.write_csv("table3_contention");
    println!(
        "Paper's observation (Table III): contention falls as T grows to ~32, then\n\
         rises sharply at T = S = 64 where TryLock can never be exercised."
    );
}
