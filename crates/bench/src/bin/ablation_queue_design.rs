//! **Ablation (paper §III-A)**: why *private* per-thread FIFO queues,
//! not one shared queue or no queue at all?
//!
//! The paper gives two reasons:
//! 1. "A private FIFO queue keeps the precise order of the page accesses
//!    that occur in the corresponding thread. Keeping the order is
//!    essential in some replacement algorithms like SEQ";
//! 2. "Recording access information into private FIFO queues incurs the
//!    least synchronization and coherence cost".
//!
//! Cost (2) is measured by `real_contention` and the latch column below.
//! This experiment isolates (1) with a deterministic interleaving: four
//! logical backend streams, scheduled one access at a time (the worst
//! case for order preservation), each re-scanning a warm table while a
//! shared hot set of point-query pages needs protecting. The policy is
//! SEQ-LRU, which detects consecutive-page runs **in the order it
//! observes accesses** and evicts detected scan pages first.
//!
//! * **private queues (BP-Wrapper)** — each stream's hits commit as a
//!   contiguous block, so the detector sees the scans, marks them, and
//!   later cold churn evicts scan pages instead of the hot set;
//! * **shared queue** — the commit order is the interleaved recording
//!   order: runs are chopped to length 1, nothing is marked, and churn
//!   evicts the (older) hot set. The queue also takes a latch per access;
//! * **lock per access** — same scrambled order, one lock per access.

use std::collections::HashMap;

use bpw_bench::{fmt, Table};
use bpw_core::{ArcAccessHandle, BpWrapper, SharedQueueWrapper, WrapperConfig};
use bpw_replacement::{FrameId, MissOutcome, PageId, SeqLru};

const FRAMES: usize = 2048;
const STREAMS: u64 = 4;
const HOT_PAGES: u64 = 256; // point-query working set, shared
const SCAN_LEN: u64 = 256; // per-stream table
const CHURN: u64 = 1500; // cold pages forcing evictions afterwards

/// Adapter so the three designs drive the same experiment.
trait Recorder {
    fn hit(&mut self, stream: usize, page: PageId, frame: FrameId);
    fn miss(&mut self, page: PageId, free: Option<FrameId>) -> MissOutcome;
    fn flush(&mut self);
    fn stats(&mut self) -> (u64, u64, u64); // (runs, policy acqs, latch acqs)
}

struct PrivateQueues {
    wrapper: std::sync::Arc<BpWrapper<SeqLru>>,
    handles: Vec<ArcAccessHandle<SeqLru>>,
}

impl PrivateQueues {
    fn new() -> Self {
        let wrapper = std::sync::Arc::new(BpWrapper::new(
            SeqLru::new(FRAMES),
            WrapperConfig::default(),
        ));
        let handles = (0..STREAMS).map(|_| wrapper.handle_arc()).collect();
        PrivateQueues { wrapper, handles }
    }
}

impl Recorder for PrivateQueues {
    fn hit(&mut self, stream: usize, page: PageId, frame: FrameId) {
        self.handles[stream].record_hit(page, frame);
    }
    fn miss(&mut self, page: PageId, free: Option<FrameId>) -> MissOutcome {
        // Misses may come from any stream; use its queue (stream 0's
        // handle suffices deterministically: all are drained on a miss
        // only for that handle — flush the rest first for fairness).
        self.handles[0].record_miss(page, free, &mut |_| true)
    }
    fn flush(&mut self) {
        for h in &mut self.handles {
            h.flush();
        }
    }
    fn stats(&mut self) -> (u64, u64, u64) {
        let runs = self.wrapper.with_locked(|p| p.detected_runs());
        (runs, self.wrapper.lock_stats().snapshot().acquisitions, 0)
    }
}

struct SharedQueue(SharedQueueWrapper<SeqLru>);

impl Recorder for SharedQueue {
    fn hit(&mut self, _stream: usize, page: PageId, frame: FrameId) {
        self.0.record_hit(page, frame);
    }
    fn miss(&mut self, page: PageId, free: Option<FrameId>) -> MissOutcome {
        self.0.record_miss(page, free, &mut |_| true)
    }
    fn flush(&mut self) {
        self.0.flush();
    }
    fn stats(&mut self) -> (u64, u64, u64) {
        let runs = self.0.with_locked(|p| p.detected_runs());
        (
            runs,
            self.0.policy_lock_stats().snapshot().acquisitions,
            self.0.queue_lock_stats().snapshot().acquisitions,
        )
    }
}

struct LockPerAccess {
    wrapper: std::sync::Arc<BpWrapper<SeqLru>>,
    handle: ArcAccessHandle<SeqLru>,
}

impl LockPerAccess {
    fn new() -> Self {
        let wrapper = std::sync::Arc::new(BpWrapper::new(
            SeqLru::new(FRAMES),
            WrapperConfig::lock_per_access(),
        ));
        let handle = wrapper.handle_arc();
        LockPerAccess { wrapper, handle }
    }
}

impl Recorder for LockPerAccess {
    fn hit(&mut self, _stream: usize, page: PageId, frame: FrameId) {
        self.handle.record_hit(page, frame);
    }
    fn miss(&mut self, page: PageId, free: Option<FrameId>) -> MissOutcome {
        self.handle.record_miss(page, free, &mut |_| true)
    }
    fn flush(&mut self) {
        self.handle.flush();
    }
    fn stats(&mut self) -> (u64, u64, u64) {
        let runs = self.wrapper.with_locked(|p| p.detected_runs());
        (runs, self.wrapper.lock_stats().snapshot().acquisitions, 0)
    }
}

struct Experiment {
    map: HashMap<PageId, FrameId>,
    free: Vec<FrameId>,
}

impl Experiment {
    fn new() -> Self {
        Experiment {
            map: HashMap::new(),
            free: (0..FRAMES as FrameId).rev().collect(),
        }
    }

    fn access(&mut self, rec: &mut dyn Recorder, stream: usize, page: PageId) -> bool {
        if let Some(&frame) = self.map.get(&page) {
            rec.hit(stream, page, frame);
            return true;
        }
        let free = self.free.pop();
        match rec.miss(page, free) {
            MissOutcome::AdmittedFree(f) => {
                self.map.insert(page, f);
            }
            MissOutcome::Evicted { frame, victim } => {
                self.map.remove(&victim);
                self.map.insert(page, frame);
            }
            MissOutcome::NoEvictableFrame => unreachable!("filter is permissive"),
        }
        false
    }

    /// Run the three-phase experiment; returns the hot-set survival hit
    /// ratio of the probe phase.
    fn run(&mut self, rec: &mut dyn Recorder) -> f64 {
        let scan_base = |s: u64| 100_000 + s * 10_000;
        // Phase 1 — warm the hot set (strided ids: never consecutive) and
        // each stream's table.
        for &p in &hot_ids() {
            self.access(rec, 0, p);
        }
        for s in 0..STREAMS {
            for p in scan_base(s)..scan_base(s) + SCAN_LEN {
                self.access(rec, s as usize, p);
            }
        }
        // Phase 2 — warm re-scans, interleaved one access at a time: the
        // order-sensitivity stress. Everything hits.
        for round in 0..3 {
            let mut cursors: Vec<u64> = (0..STREAMS).map(scan_base).collect();
            for _ in 0..SCAN_LEN {
                for (s, cursor) in cursors.iter_mut().enumerate() {
                    let p = *cursor;
                    *cursor += 1;
                    let hit = self.access(rec, s, p);
                    debug_assert!(hit, "round {round}: scan page should be warm");
                }
            }
        }
        rec.flush();
        // Phase 3 — cold churn forces evictions: do the scans or the hot
        // set pay? (Strided ids: the churn itself must not look like a
        // scan, or it would mark and evict itself.)
        for p in 0..CHURN {
            self.access(rec, 0, 900_000 + p * 131);
        }
        // Probe — how much of the hot set survived?
        let mut hits = 0;
        for &p in &hot_ids() {
            if self.map.contains_key(&p) {
                hits += 1;
            }
        }
        hits as f64 / HOT_PAGES as f64
    }
}

/// Hot pages with strided ids so they never look sequential.
fn hot_ids() -> Vec<PageId> {
    (0..HOT_PAGES).map(|i| i * 97 + 13).collect()
}

fn main() {
    let mut t = Table::new(
        "Queue-design ablation: SEQ-LRU, 4 interleaved streams re-scanning warm tables",
        &[
            "design",
            "scan_runs_detected",
            "hot_set_survival",
            "policy_lock_acqs",
            "queue_latch_acqs",
        ],
    );
    let mut recs: Vec<(&str, Box<dyn Recorder>)> = vec![
        (
            "private queues (BP-Wrapper)",
            Box::new(PrivateQueues::new()),
        ),
        (
            "shared queue",
            Box::new(SharedQueue(SharedQueueWrapper::new(
                SeqLru::new(FRAMES),
                64,
                32,
            ))),
        ),
        ("lock per access", Box::new(LockPerAccess::new())),
    ];
    for (name, rec) in &mut recs {
        let survival = Experiment::new().run(rec.as_mut());
        let (runs, policy_acqs, latch_acqs) = rec.stats();
        t.row(vec![
            (*name).to_owned(),
            runs.to_string(),
            fmt(survival),
            policy_acqs.to_string(),
            latch_acqs.to_string(),
        ]);
    }
    t.print();
    t.write_csv("ablation_queue_design");
    println!(
        "Private queues deliver each stream's hits contiguously, so the detector\n\
         sees the re-scans, marks them sequential, and the churn evicts scan pages —\n\
         the hot set survives. Interleaved designs (shared queue, per-access lock)\n\
         destroy the ordering: no runs detected, hot set evicted, and the shared\n\
         queue pays a latch acquisition on every recorded access on top."
    );
}
