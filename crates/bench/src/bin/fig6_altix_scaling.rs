//! **Figure 6**: throughput, average response time, and average lock
//! contention of the five systems (pgClock, pgQ, pgBat, pgPre, pgBatPre)
//! under DBT-1, DBT-2, and TableScan on the SGI Altix 350 as processors
//! scale 1 -> 16.

use bpw_bench::scaling::scaling_figure;
use bpw_sim::HardwareProfile;

fn main() {
    scaling_figure(HardwareProfile::altix350(), &[1, 2, 4, 8, 16], "fig6_altix");
}
