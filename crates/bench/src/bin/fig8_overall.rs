//! **Figure 8**: overall performance with buffers *smaller* than the
//! data set — "hit ratios and normalized throughputs of three postgresql
//! systems (pgClock, pgQ, pgBatPre) with workloads DBT-1 and DBT-2 on
//! the PowerEdge 1900 when the number of processors is 8", buffer size
//! swept from small to nearly data-sized.
//!
//! Two-stage reproduction:
//! 1. **Hit ratios** come from the real replacement algorithms (CLOCK vs
//!    2Q) running on traces captured from the workload generators —
//!    the BP-wrapped 2Q is *proven* access-equivalent to bare 2Q
//!    (see `bpw-core` property tests), so `pgQ` and `pgBatPre` share a
//!    curve, exactly as the paper observes ("the hit ratio curves of
//!    pgQ and pgBatPre overlap very well").
//! 2. **Throughput** comes from the multiprocessor simulator at 8 CPUs
//!    with each system's measured miss ratio driving the I/O model.

use bpw_bench::{fmt, Table};
use bpw_core::{SystemKind, WrappedCache, WrapperConfig};
use bpw_replacement::{CacheSim, Clock, TwoQ};
use bpw_sim::{simulate, HardwareProfile, SimParams, SystemSpec, WorkloadParams};
use bpw_workloads::{Trace, WorkloadKind};

/// Interleave per-thread streams transaction-by-transaction into one
/// reference string, as concurrent backends would produce.
fn capture_trace(kind: WorkloadKind, threads: usize, accesses: usize) -> Vec<u64> {
    let w = kind.build();
    let txns_per_thread = 1_500;
    let traces = Trace::capture_per_thread(&*w, threads, txns_per_thread, 0xF168);
    let mut flat = Vec::with_capacity(accesses);
    let iters: Vec<_> = traces
        .iter()
        .map(|t| t.transactions().collect::<Vec<_>>())
        .collect();
    let mut round = 0;
    'outer: loop {
        let mut progressed = false;
        for txns in &iters {
            if let Some(txn) = txns.get(round) {
                flat.extend_from_slice(txn);
                progressed = true;
                if flat.len() >= accesses {
                    break 'outer;
                }
            }
        }
        if !progressed {
            break;
        }
        round += 1;
    }
    flat
}

fn main() {
    let threads = 8;
    let target_accesses = 400_000;
    for kind in [WorkloadKind::Dbt1, WorkloadKind::Dbt2] {
        let trace = capture_trace(kind, threads, target_accesses);
        let universe = kind.build().page_universe();
        println!(
            "{}: {} accesses over {} distinct pages (page universe {})\n",
            kind.name(),
            trace.len(),
            {
                let mut v = trace.clone();
                v.sort_unstable();
                v.dedup();
                v.len()
            },
            universe
        );

        let mut table = Table::new(
            &format!(
                "Fig. 8 ({}, PowerEdge 1900, 8 cpus): hit ratio and normalized throughput",
                kind.name()
            ),
            &[
                "buffer_MB",
                "frames",
                "hit%_pgClock",
                "hit%_pgQ",
                "hit%_pgBatPre",
                "ntput_pgClock",
                "ntput_pgQ",
                "ntput_pgBatPre",
            ],
        );

        for frac in [0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32] {
            let frames = ((universe as f64 * frac) as usize).max(64);
            // Stage 1: real hit ratios, measured on a second pass over
            // the trace after a full warm-up pass — the paper pre-warms
            // the buffer before measuring.
            let second_pass = |mut hit: Box<dyn FnMut(u64) -> bool>| {
                for &p in &trace {
                    hit(p); // warm-up pass
                }
                let mut hits = 0u64;
                for &p in &trace {
                    if hit(p) {
                        hits += 1;
                    }
                }
                hits as f64 / trace.len() as f64
            };
            let clock_hr = {
                let mut sim = CacheSim::new(Clock::new(frames));
                second_pass(Box::new(move |p| sim.access(p)))
            };
            let q_hr = {
                let mut sim = CacheSim::new(TwoQ::new(frames));
                second_pass(Box::new(move |p| sim.access(p)))
            };
            let batpre_hr = {
                let mut sim = WrappedCache::new(TwoQ::new(frames), WrapperConfig::default());
                second_pass(Box::new(move |p| sim.access(p)))
            };

            // Stage 2: simulated 8-cpu throughput with each miss ratio.
            let tput = |sys: SystemKind, hr: f64| {
                let wl = WorkloadParams::for_kind(kind)
                    .with_misses((1.0 - hr).clamp(0.0, 1.0), 1_500_000);
                let mut p = SimParams::new(
                    HardwareProfile::poweredge1900(),
                    8,
                    SystemSpec::new(sys),
                    wl,
                );
                p.horizon_ms = 800;
                simulate(p).throughput_tps
            };
            let t_clock = tput(SystemKind::Clock, clock_hr);
            let t_q = tput(SystemKind::LockPerAccess, q_hr);
            let t_batpre = tput(SystemKind::BatchingPrefetching, batpre_hr);
            let norm = t_batpre.max(1e-9);

            let mb = frames as f64 * 8192.0 / 1e6;
            table.row(vec![
                fmt(mb),
                frames.to_string(),
                fmt(clock_hr * 100.0),
                fmt(q_hr * 100.0),
                fmt(batpre_hr * 100.0),
                fmt(t_clock / norm),
                fmt(t_q / norm),
                fmt(1.0),
            ]);
        }
        table.print();
        table.write_csv(&format!(
            "fig8_{}",
            kind.name().to_lowercase().replace('-', "")
        ));
    }
    println!(
        "Paper's observations (Fig. 8): (1) pgQ/pgBatPre hit-ratio curves overlap —\n\
         BP-Wrapper does not hurt hit ratios; (2) with small buffers the 2Q systems\n\
         beat pgClock on hit ratio (I/O-bound regime); (3) as the buffer grows, pgQ's\n\
         lock contention drags it below pgClock, while pgBatPre keeps both advantages."
    );
}
