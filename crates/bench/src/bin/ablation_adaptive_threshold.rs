//! **Extension ablation**: the adaptive batch threshold
//! (`bpw_core::AdaptiveHandle`) versus the paper's static `T = S/2`.
//!
//! Table III shows the threshold's trade-off is load-dependent; the
//! adaptive handle moves `T` with observed TryLock outcomes. This
//! experiment alternates quiet and contended phases and reports, for
//! each phase, where the adaptive threshold settled and the per-access
//! lock traffic of both designs.

use bpw_bench::{fmt, Table};
use bpw_core::{AdaptiveConfig, AdaptiveHandle, BpWrapper, WrapperConfig};
use bpw_replacement::{ReplacementPolicy, TwoQ};

const FRAMES: usize = 2048;
const PHASE_ACCESSES: u64 = 400_000;

fn warmed() -> BpWrapper<TwoQ> {
    let w = BpWrapper::new(TwoQ::new(FRAMES), WrapperConfig::default());
    w.with_locked(|p| {
        for i in 0..FRAMES as u64 {
            p.record_miss(i, Some(i as u32), &mut |_| true);
        }
    });
    w
}

/// Drive `accesses` hits; under `contended`, a hog thread occupies the
/// replacement lock in long pulses (a slow commit, an eviction storm —
/// whatever keeps the latch busy; on a 1-core host genuine overlap is
/// rare, so the pulses make the pressure reproducible).
fn phase(
    wrapper: &BpWrapper<TwoQ>,
    adaptive: &mut AdaptiveHandle<'_, TwoQ>,
    contended: bool,
) -> (u64, u64) {
    use std::sync::atomic::{AtomicBool, Ordering};
    let before = wrapper.lock_stats().snapshot();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        if contended {
            let wrapper = &wrapper;
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    wrapper.with_locked(|_| {
                        let t0 = std::time::Instant::now();
                        // Long pulses: even on a single-core host the
                        // hog is regularly preempted *while holding*.
                        while t0.elapsed() < std::time::Duration::from_millis(1) {
                            std::hint::spin_loop();
                        }
                    });
                    std::thread::yield_now();
                }
            });
        }
        let mut x = 0xFEED_F00D_u64;
        for i in 0..PHASE_ACCESSES {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let page = x % FRAMES as u64;
            adaptive.record_hit(page, page as u32);
            if contended && i % 64 == 0 {
                // Interleave with the hog (single-core hosts would
                // otherwise run the phases back-to-back, not overlapped).
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
    let after = wrapper.lock_stats().snapshot();
    let d = after.since(&before);
    (d.acquisitions, d.trylock_failures)
}

fn main() {
    let wrapper = warmed();
    let mut adaptive = AdaptiveHandle::with_config(
        &wrapper,
        AdaptiveConfig {
            initial_threshold: 32,
            ..Default::default()
        },
    );

    let mut t = Table::new(
        "Adaptive threshold across alternating load phases (S = 64, start T = 32)",
        &[
            "phase",
            "adaptive_T_after",
            "lock_acqs_in_phase",
            "trylock_failures",
        ],
    );
    for (name, contended) in [
        ("quiet #1", false),
        ("contended #1", true),
        ("quiet #2", false),
        ("contended #2", true),
    ] {
        let (acqs, fails) = phase(&wrapper, &mut adaptive, contended);
        t.row(vec![
            name.to_owned(),
            adaptive.threshold().to_string(),
            acqs.to_string(),
            fails.to_string(),
        ]);
    }
    t.print();
    t.write_csv("ablation_adaptive_threshold");

    // Effective batch achieved by the adaptive handle overall.
    let snap = wrapper.lock_stats().snapshot();
    println!(
        "overall: {} acquisitions for {} committed accesses = {} accesses/lock",
        snap.acquisitions,
        snap.accesses_covered,
        fmt(snap.accesses_per_acquisition())
    );
    println!(
        "The threshold decays toward {} in quiet phases (fresh history, cheap locks)\n\
         and climbs under contention (bigger batches, fewer acquisitions) — a knob the\n\
         static design must fix in advance.",
        AdaptiveConfig::default().min_threshold
    );
}
