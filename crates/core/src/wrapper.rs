//! The BP-Wrapper framework (paper §III, Fig. 4): batching + prefetching
//! around an *unmodified* replacement policy.
//!
//! ```text
//! replacement_for_page_hit(p):            replacement_for_page_miss(p):
//!   Queue[Tail++] = p                       Lock()
//!   if Tail >= batch_threshold:             for each q in Queue: commit(q)
//!     if TryLock() fails:                   run policy miss path for p
//!       if Tail < S: return                 UnLock(); Tail = 0
//!       Lock()
//!     commit all queued accesses
//!     UnLock(); Tail = 0
//! ```
//!
//! The policy is wrapped, not changed: any [`ReplacementPolicy`] gains an
//! (almost) lock-contention-free hit path.

use std::sync::Arc;

use bpw_metrics::{Counter, Gauge, LockStats};
use bpw_replacement::{FrameId, MissOutcome, PageId, ReplacementPolicy};

use crate::combining::{PublicationBoard, SlotId};
use crate::config::{Combining, WrapperConfig};
use crate::lock::{InstrumentedLock, LockGuard};
use crate::prefetch::Prefetcher;
use crate::queue::{AccessEntry, AccessQueue};

/// Publication slots a combining-enabled wrapper provides; handles
/// beyond this many concurrent threads fall back to blocking commits.
const COMBINING_SLOTS: usize = 64;

/// Fairness bound: at most this many drain passes per critical section.
/// A combiner drains whatever is pending, and gives fresh publications
/// arriving *while it drains* one more chance — then it must release
/// the lock, or a steady stream of publishers could pin one thread in
/// the critical section indefinitely (combiner starvation). The
/// `dst_mutation = "fairness"` mutant removes the bound; the dst
/// fairness checker must catch the unbounded tenure.
pub const MAX_COMBINE_PASSES: u32 = 2;

/// A point-in-time copy of the combining counters, for STATS/METRICS.
#[derive(Debug, Clone, Copy, Default)]
pub struct CombiningSnapshot {
    /// Configured combining mode.
    pub mode: Combining,
    /// Batches published instead of blocking (or waiting) on the lock.
    pub published: u64,
    /// Publish attempts that failed (slot busy or none) and fell back
    /// to accumulating or blocking.
    pub publish_fallbacks: u64,
    /// Published batches reclaimed by their own thread before newer
    /// accesses were committed.
    pub reclaimed: u64,
    /// Other threads' batches applied by lock holders.
    pub combined_batches: u64,
    /// Entries inside those combined batches.
    pub combined_entries: u64,
    /// Drain passes executed across all critical sections.
    pub combine_passes: u64,
    /// Batches drained in the most recent combining critical section.
    pub combine_depth_last: u64,
    /// Most batches ever drained in one critical section.
    pub combine_depth_peak: u64,
}

/// Counters specific to the wrapper (beyond the lock statistics).
#[derive(Debug, Default)]
pub struct WrapperCounters {
    /// Page accesses recorded through any handle (hits + misses).
    pub accesses: Counter,
    /// Queued entries applied to the policy at commit time.
    pub committed: Counter,
    /// Queued entries skipped at commit because the frame no longer held
    /// the recorded page (eviction/invalidation raced the delayed commit).
    pub stale_skipped: Counter,
    /// Commit rounds (batches) executed.
    pub batches: Counter,
    /// Contended commits turned into publications instead of blocking
    /// (or deferred) `Lock()` calls (combining only).
    pub published: Counter,
    /// Publish attempts that found the slot occupied or both buffers in
    /// flight and fell back to accumulating/blocking (combining only).
    pub publish_fallbacks: Counter,
    /// Published batches a thread took back and applied itself before
    /// committing newer accesses (order preservation; combining only).
    pub reclaimed: Counter,
    /// Other threads' published batches applied while holding the lock
    /// (combining only).
    pub combined_batches: Counter,
    /// Entries inside those combined batches (combining only).
    pub combined_entries: Counter,
    /// Drain passes executed by combining critical sections (at most
    /// [`MAX_COMBINE_PASSES`] each; combining only).
    pub combine_passes: Counter,
    /// Batches drained per combining critical section: last observed
    /// value and all-time peak (combining only).
    pub combine_depth: Gauge,
}

/// A replacement policy wrapped with the paper's batching and prefetching
/// techniques. Clone an [`AccessHandle`] per worker thread via
/// [`BpWrapper::handle`].
pub struct BpWrapper<P: ReplacementPolicy> {
    lock: InstrumentedLock<P>,
    config: WrapperConfig,
    prefetcher: Prefetcher,
    counters: WrapperCounters,
    board: Option<PublicationBoard>,
}

impl<P: ReplacementPolicy> BpWrapper<P> {
    /// Wrap `policy` with the given configuration.
    pub fn new(policy: P, config: WrapperConfig) -> Self {
        config.validate();
        let region = policy.node_region();
        let lock = InstrumentedLock::new(policy, Arc::new(LockStats::new()));
        let prefetcher = if config.prefetching {
            // Warm the policy header (list heads, counters) — bounded so
            // huge policy structs don't turn the hint into a scan.
            let header = std::mem::size_of::<P>().min(256);
            Prefetcher::new(lock.data_addr(), header, region)
        } else {
            Prefetcher::disabled()
        };
        BpWrapper {
            lock,
            config,
            prefetcher,
            counters: WrapperCounters::default(),
            board: config
                .combining
                .is_enabled()
                .then(|| PublicationBoard::new(COMBINING_SLOTS, config.queue_size)),
        }
    }

    /// Wrap with the paper's default configuration (S=64, T=32, both
    /// techniques on).
    pub fn with_defaults(policy: P) -> Self {
        Self::new(policy, WrapperConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> WrapperConfig {
        self.config
    }

    /// Lock statistics (acquisitions, contentions, hold/wait time).
    pub fn lock_stats(&self) -> &Arc<LockStats> {
        self.lock.stats()
    }

    /// Wrapper counters (accesses, commits, stale skips).
    pub fn counters(&self) -> &WrapperCounters {
        &self.counters
    }

    /// Snapshot of the combining-commit counters (all zero with
    /// combining off).
    pub fn combining_snapshot(&self) -> CombiningSnapshot {
        CombiningSnapshot {
            mode: self.config.combining,
            published: self.counters.published.get(),
            publish_fallbacks: self.counters.publish_fallbacks.get(),
            reclaimed: self.counters.reclaimed.get(),
            combined_batches: self.counters.combined_batches.get(),
            combined_entries: self.counters.combined_entries.get(),
            combine_passes: self.counters.combine_passes.get(),
            combine_depth_last: self.counters.combine_depth.get(),
            combine_depth_peak: self.counters.combine_depth.peak(),
        }
    }

    /// Create a per-thread access handle with its own private FIFO queue.
    pub fn handle(&self) -> AccessHandle<'_, P> {
        AccessHandle {
            slot: self.board.as_ref().and_then(PublicationBoard::register),
            wrapper: self,
            queue: AccessQueue::new(self.config.queue_size),
        }
    }

    /// Like [`handle`](Self::handle) but owning an `Arc` to the wrapper,
    /// for threads that outlive a borrow scope.
    pub fn handle_arc(self: &std::sync::Arc<Self>) -> ArcAccessHandle<P> {
        ArcAccessHandle {
            slot: self.board.as_ref().and_then(PublicationBoard::register),
            wrapper: std::sync::Arc::clone(self),
            queue: AccessQueue::new(self.config.queue_size),
        }
    }

    /// The paper's contention metric: blocked lock acquisitions per
    /// million recorded page accesses.
    pub fn contentions_per_million(&self) -> f64 {
        self.lock
            .stats()
            .contentions_per_million(self.counters.accesses.get())
    }

    /// Run `f` with the policy locked (for invalidation, inspection,
    /// warm-up). Counts as an ordinary acquisition.
    pub fn with_locked<R>(&self, f: impl FnOnce(&mut P) -> R) -> R {
        let mut guard = self.lock.lock();
        f(&mut guard)
    }

    /// Drain every published-but-undrained batch off the publication
    /// board **without applying it** and return the entries. This is
    /// the manager hot-swap retirement path: when this wrapper is being
    /// replaced, handles abandon their slots (see
    /// [`AccessHandle::take_for_swap`]) and the swap coordinator moves
    /// the stranded advice into the successor manager. Returns an empty
    /// vec when combining is off.
    pub fn drain_published(&self) -> Vec<AccessEntry> {
        let Some(board) = self.board.as_ref() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        loop {
            let drained = board.drain_pass(None, |batch| out.extend_from_slice(batch));
            if drained == 0 {
                break;
            }
        }
        out
    }

    /// Quietly enqueue already-recorded accesses into a caller-owned
    /// queue: no access counter increment and no `RecordHit` history op
    /// (each entry was recorded exactly once by its original thread —
    /// the eventual commit supplies the matching `CommitHit`). Flushes
    /// whenever the queue fills so arbitrarily large transfers fit.
    fn absorb_into_queue(
        &self,
        queue: &mut AccessQueue,
        slot: Option<SlotId>,
        entries: &[(PageId, FrameId)],
    ) {
        for &(page, frame) in entries {
            if queue.is_full() {
                self.flush_queue(queue, slot);
            }
            queue.push(page, frame);
        }
    }

    /// The hit path of the paper's pseudo-code, against a caller-owned
    /// private queue.
    fn hit_with_queue(
        &self,
        queue: &mut AccessQueue,
        slot: Option<SlotId>,
        page: PageId,
        frame: FrameId,
    ) {
        bpw_dst::yield_point();
        self.counters.accesses.incr();
        queue.push(page, frame);
        bpw_dst::record(|| bpw_dst::Op::RecordHit { page, frame });
        if !self.config.batching || queue.len() >= self.config.batch_threshold {
            self.prefetcher.prefetch_for_commit(queue.entries());
            if !self.config.batching {
                // Lock-per-access baseline: a blocking Lock() every time.
                let mut guard = self.lock.lock();
                self.commit_locked(&mut guard, queue, slot);
                return;
            }
            match self.lock.try_lock() {
                Some(mut guard) => self.commit_locked(&mut guard, queue, slot),
                None => {
                    // Flat combining: *any* contended threshold crossing
                    // publishes and returns — the lock holder retires the
                    // batch. Overflow mode keeps the paper's behavior of
                    // accumulating until the queue is full.
                    if self.config.combining == Combining::Flat && self.try_publish(queue, slot) {
                        return;
                    }
                    if queue.is_full() {
                        // The paper blocks in Lock() here; both combining
                        // modes try one last publication first (flat
                        // retries because the slot may have been drained
                        // since the threshold attempt).
                        if self.try_publish(queue, slot) {
                            return;
                        }
                        let mut guard = self.lock.lock();
                        self.commit_locked(&mut guard, queue, slot);
                    }
                    // Otherwise: keep accumulating; try again at the next
                    // threshold crossing (i.e. the next access).
                }
            }
        }
    }

    /// Combining publish path: hand the queue's storage to this handle's
    /// publication slot instead of blocking. Returns `true` when the
    /// batch was published (the queue is then empty, backed by the
    /// slot's recycled buffer — an O(1) pointer swap, no allocation and
    /// no entry copies). Fails — leaving the queue untouched — when
    /// combining is off, the handle has no slot, or the slot still
    /// holds an older undrained batch: publishing over it would let the
    /// combiner apply batches of one thread out of order.
    fn try_publish(&self, queue: &mut AccessQueue, slot: Option<SlotId>) -> bool {
        let (Some(board), Some(slot)) = (self.board.as_ref(), slot) else {
            return false;
        };
        let len = queue.len() as u32;
        if board.publish(slot, queue.storage_mut()) {
            self.counters.published.incr();
            bpw_dst::record(|| bpw_dst::Op::PublishBatch { len });
            true
        } else {
            self.counters.publish_fallbacks.incr();
            false
        }
    }

    /// The miss path of the paper's pseudo-code: lock, commit queued
    /// hits in order, then run the policy's miss logic.
    fn miss_with_queue(
        &self,
        queue: &mut AccessQueue,
        slot: Option<SlotId>,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        bpw_dst::yield_point();
        self.counters.accesses.incr();
        self.prefetcher.prefetch_for_commit(queue.entries());
        let mut guard = self.lock.lock();
        self.commit_locked(&mut guard, queue, slot);
        let out = guard.record_miss(page, free, evictable);
        bpw_dst::record(|| bpw_dst::Op::MissApply {
            page,
            free,
            frame: out.frame(),
            victim: out.victim(),
        });
        guard.cover_accesses(1);
        out
    }

    /// Non-blocking commit attempt against a caller-owned queue
    /// (used by [`AdaptiveHandle`](crate::adaptive::AdaptiveHandle)).
    /// `Err(())` means the lock was busy; the queue is untouched.
    pub(crate) fn try_commit(&self, queue: &mut AccessQueue) -> Result<(), ()> {
        self.prefetcher.prefetch_for_commit(queue.entries());
        match self.lock.try_lock() {
            Some(mut guard) => {
                self.commit_locked(&mut guard, queue, None);
                Ok(())
            }
            None => Err(()),
        }
    }

    /// Blocking commit of a caller-owned queue.
    pub(crate) fn blocking_commit(&self, queue: &mut AccessQueue) {
        self.flush_queue(queue, None);
    }

    /// Miss path against a caller-owned queue.
    pub(crate) fn miss_commit(
        &self,
        queue: &mut AccessQueue,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        self.miss_with_queue(queue, None, page, free, evictable)
    }

    /// Hold the policy lock directly (tests: simulate a busy lock).
    #[cfg(test)]
    pub(crate) fn lock_for_test(&self) -> LockGuard<'_, P> {
        self.lock.lock()
    }

    /// Force-commit a queue's accesses (blocking). Also reclaims and
    /// applies this handle's published-but-undrained batch, if any.
    fn flush_queue(&self, queue: &mut AccessQueue, slot: Option<SlotId>) {
        let pending = match (self.board.as_ref(), slot) {
            (Some(board), Some(slot)) => board.is_published(slot),
            _ => false,
        };
        if queue.is_empty() && !pending {
            return;
        }
        self.prefetcher.prefetch_for_commit(queue.entries());
        let mut guard = self.lock.lock();
        self.commit_locked(&mut guard, queue, slot);
    }

    /// One critical section's worth of commit work: first this thread's
    /// pending published batch (older accesses must land before newer
    /// ones), then its queue, then — combining only — every other
    /// thread's published batch.
    fn commit_locked(
        &self,
        guard: &mut LockGuard<'_, P>,
        queue: &mut AccessQueue,
        slot: Option<SlotId>,
    ) {
        // Reclaim-before-commit (§III-A): this thread's published batch
        // holds *older* accesses than its queue, so it must be applied
        // first or the thread's program order is reordered. The
        // `dst_mutation = "combining"` mutant defers the reclaimed batch
        // until after the queue commit — exactly the ordering bug the
        // dst commit-order checker must catch.
        #[cfg(dst_mutation = "combining")]
        let mut deferred: Option<crate::combining::TakenBatch<'_>> = None;
        if let (Some(board), Some(slot)) = (self.board.as_ref(), slot) {
            if let Some(batch) = board.take(slot) {
                self.counters.reclaimed.incr();
                bpw_dst::record(|| bpw_dst::Op::ReclaimBatch {
                    len: batch.len() as u32,
                });
                #[cfg(not(dst_mutation = "combining"))]
                self.apply_batch(guard, &batch);
                #[cfg(dst_mutation = "combining")]
                {
                    deferred = Some(batch);
                }
            }
        }
        let n = queue.len() as u64;
        let span = bpw_trace::span_start();
        let mut applied = 0u64;
        for entry in queue.drain() {
            let hit = guard.page_at(entry.frame) == Some(entry.page);
            if hit {
                guard.record_hit(entry.frame);
                applied += 1;
            }
            bpw_dst::record(|| bpw_dst::Op::CommitHit {
                page: entry.page,
                frame: entry.frame,
                applied: hit,
            });
        }
        guard.cover_accesses(n);
        self.counters.committed.add(applied);
        self.counters.stale_skipped.add(n - applied);
        self.counters.batches.incr();
        // Staged: the commit's duration is also credited to the calling
        // thread's batch-commit stage scratch, so the server can
        // attribute it to the owning request.
        bpw_trace::span_end_staged(bpw_trace::EventKind::BatchCommit, span, n);
        #[cfg(dst_mutation = "combining")]
        if let Some(batch) = deferred {
            self.apply_batch(guard, &batch);
        }
        if let Some(board) = self.board.as_ref() {
            self.combine_published(guard, board, slot);
        }
    }

    /// Apply one published batch (same stale-skip rule as a queue
    /// commit).
    fn apply_batch(&self, guard: &mut LockGuard<'_, P>, entries: &[AccessEntry]) {
        let n = entries.len() as u64;
        let span = bpw_trace::span_start();
        let mut applied = 0u64;
        for entry in entries {
            let hit = guard.page_at(entry.frame) == Some(entry.page);
            if hit {
                guard.record_hit(entry.frame);
                applied += 1;
            }
            bpw_dst::record(|| bpw_dst::Op::CommitHit {
                page: entry.page,
                frame: entry.frame,
                applied: hit,
            });
        }
        guard.cover_accesses(n);
        self.counters.committed.add(applied);
        self.counters.stale_skipped.add(n - applied);
        self.counters.batches.incr();
        bpw_trace::span_end_staged(bpw_trace::EventKind::BatchCommit, span, n);
    }

    /// Drain other threads' published batches while we hold the lock —
    /// the combining side of flat combining. Runs repeated passes so
    /// publications that land *while* we drain are also retired, but at
    /// most [`MAX_COMBINE_PASSES`] of them: an unbounded loop would let
    /// a steady publisher stream pin this thread in the critical
    /// section (the `dst_mutation = "fairness"` mutant does exactly
    /// that, and the dst fairness checker must flag it).
    fn combine_published(
        &self,
        guard: &mut LockGuard<'_, P>,
        board: &PublicationBoard,
        own: Option<SlotId>,
    ) {
        let span = bpw_trace::span_start();
        let mut entries = 0u64;
        let mut batches = 0u64;
        let mut passes = 0u32;
        loop {
            let drained = board.drain_pass(own, |batch| {
                entries += batch.len() as u64;
                batches += 1;
                bpw_dst::record(|| bpw_dst::Op::CombineBatch {
                    len: batch.len() as u32,
                });
                self.apply_batch(guard, batch);
            });
            if drained == 0 {
                break;
            }
            passes += 1;
            #[cfg(not(dst_mutation = "fairness"))]
            if passes >= MAX_COMBINE_PASSES {
                break;
            }
        }
        if batches > 0 {
            self.counters.combined_batches.add(batches);
            self.counters.combined_entries.add(entries);
            self.counters.combine_passes.add(passes as u64);
            self.counters.combine_depth.observe(batches);
            bpw_dst::record(|| bpw_dst::Op::CombineDrain {
                passes,
                batches: batches as u32,
            });
            bpw_trace::span_end(bpw_trace::EventKind::CombinedCommit, span, entries);
        }
    }
}

/// A thread's private interface to a [`BpWrapper`]: records hits into the
/// thread's FIFO queue and commits them in batches per the paper's
/// pseudo-code.
pub struct AccessHandle<'w, P: ReplacementPolicy> {
    wrapper: &'w BpWrapper<P>,
    queue: AccessQueue,
    slot: Option<SlotId>,
}

impl<'w, P: ReplacementPolicy> AccessHandle<'w, P> {
    /// Record a buffer **hit** on `page` residing in `frame`
    /// (`replacement_for_page_hit` in the paper).
    pub fn record_hit(&mut self, page: PageId, frame: FrameId) {
        self.wrapper
            .hit_with_queue(&mut self.queue, self.slot, page, frame);
    }

    /// Record a buffer **miss** on `page`
    /// (`replacement_for_page_miss`): takes the lock, commits any queued
    /// hits first (preserving this thread's access order), then runs the
    /// policy's miss path.
    pub fn record_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        self.wrapper
            .miss_with_queue(&mut self.queue, self.slot, page, free, evictable)
    }

    /// Force-commit any queued accesses (blocking). Call when a thread
    /// finishes its work so no history is lost.
    pub fn flush(&mut self) {
        self.wrapper.flush_queue(&mut self.queue, self.slot);
    }

    /// Number of accesses currently waiting in this thread's queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Manager hot-swap: surrender this handle's queued accesses and
    /// abandon its publication slot, *without* committing anything into
    /// the (retiring) wrapper. The returned entries must be re-queued
    /// into the successor via [`AccessHandle::absorb`]. Any batch this
    /// handle already published stays on the board — the swap
    /// coordinator retires the whole board with
    /// [`BpWrapper::drain_published`]; touching it here would race that
    /// drain. The leaked slot is harmless: the board retires with the
    /// old manager.
    pub fn take_for_swap(&mut self) -> Vec<(PageId, FrameId)> {
        self.slot = None;
        self.queue.drain().map(|e| (e.page, e.frame)).collect()
    }

    /// Manager hot-swap: quietly adopt accesses recorded against a
    /// predecessor manager (no counter increment, no `RecordHit` op —
    /// they were already recorded once). They commit with this
    /// wrapper's next batch.
    pub fn absorb(&mut self, entries: &[(PageId, FrameId)]) {
        self.wrapper
            .absorb_into_queue(&mut self.queue, self.slot, entries);
    }

    /// The wrapper this handle feeds.
    pub fn wrapper(&self) -> &'w BpWrapper<P> {
        self.wrapper
    }
}

impl<'w, P: ReplacementPolicy> Drop for AccessHandle<'w, P> {
    fn drop(&mut self) {
        // Never lose recorded history: commit leftovers on teardown.
        // Flushing also reclaims any published batch, so the slot is
        // empty by the time it is recycled; `release` returning a batch
        // anyway (a publish raced teardown somehow) is handled by
        // committing the orphan here rather than leaking it to the
        // slot's next owner.
        self.flush();
        if let (Some(board), Some(slot)) = (self.wrapper.board.as_ref(), self.slot.take()) {
            if let Some(orphan) = board.release(slot) {
                let mut guard = self.wrapper.lock.lock();
                self.wrapper.apply_batch(&mut guard, &orphan);
            }
        }
    }
}

/// Owning counterpart of [`AccessHandle`]: holds an `Arc` to the wrapper,
/// so it can move into long-lived threads or self-contained drivers.
pub struct ArcAccessHandle<P: ReplacementPolicy> {
    wrapper: std::sync::Arc<BpWrapper<P>>,
    queue: AccessQueue,
    slot: Option<SlotId>,
}

impl<P: ReplacementPolicy> ArcAccessHandle<P> {
    /// See [`AccessHandle::record_hit`].
    pub fn record_hit(&mut self, page: PageId, frame: FrameId) {
        self.wrapper
            .hit_with_queue(&mut self.queue, self.slot, page, frame);
    }

    /// See [`AccessHandle::record_miss`].
    pub fn record_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        self.wrapper
            .miss_with_queue(&mut self.queue, self.slot, page, free, evictable)
    }

    /// See [`AccessHandle::flush`].
    pub fn flush(&mut self) {
        self.wrapper.flush_queue(&mut self.queue, self.slot);
    }

    /// Number of accesses currently waiting in this thread's queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// See [`AccessHandle::take_for_swap`].
    pub fn take_for_swap(&mut self) -> Vec<(PageId, FrameId)> {
        self.slot = None;
        self.queue.drain().map(|e| (e.page, e.frame)).collect()
    }

    /// See [`AccessHandle::absorb`].
    pub fn absorb(&mut self, entries: &[(PageId, FrameId)]) {
        self.wrapper
            .absorb_into_queue(&mut self.queue, self.slot, entries);
    }

    /// The wrapper this handle feeds.
    pub fn wrapper(&self) -> &std::sync::Arc<BpWrapper<P>> {
        &self.wrapper
    }
}

impl<P: ReplacementPolicy> Drop for ArcAccessHandle<P> {
    fn drop(&mut self) {
        self.flush();
        if let (Some(board), Some(slot)) = (self.wrapper.board.as_ref(), self.slot.take()) {
            if let Some(orphan) = board.release(slot) {
                let mut guard = self.wrapper.lock.lock();
                self.wrapper.apply_batch(&mut guard, &orphan);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpw_replacement::Lru;

    /// Pre-warm a policy: pages 0..n bound to frames 0..n.
    fn warmed(n: usize, cfg: WrapperConfig) -> BpWrapper<Lru> {
        let w = BpWrapper::new(Lru::new(n), cfg);
        w.with_locked(|p| {
            for i in 0..n as u64 {
                p.record_miss(i, Some(i as u32), &mut |_| true);
            }
        });
        w
    }

    #[test]
    fn hits_are_deferred_until_threshold() {
        let w = warmed(
            8,
            WrapperConfig::default()
                .with_queue_size(8)
                .with_batch_threshold(4),
        );
        let mut h = w.handle();
        let base = w.lock_stats().snapshot().acquisitions; // warmup acq
        h.record_hit(0, 0);
        h.record_hit(1, 1);
        h.record_hit(2, 2);
        assert_eq!(h.queued(), 3);
        assert_eq!(
            w.lock_stats().snapshot().acquisitions,
            base,
            "no lock before threshold"
        );
        h.record_hit(3, 3); // threshold: commit
        assert_eq!(h.queued(), 0);
        assert_eq!(w.lock_stats().snapshot().acquisitions, base + 1);
        assert_eq!(w.counters().committed.get(), 4);
    }

    #[test]
    fn commit_preserves_access_order() {
        // After commit, LRU order must reflect the recorded hit order.
        let w = warmed(
            4,
            WrapperConfig::default()
                .with_queue_size(4)
                .with_batch_threshold(4),
        );
        let mut h = w.handle();
        // Hit order: 2, 0, 3, 1 -> LRU eviction order 0-frames: 2 oldest hit... order of hits applied: 2,0,3,1 so LRU stack MRU..LRU = 1,3,0,2
        for (page, frame) in [(2u64, 2u32), (0, 0), (3, 3), (1, 1)] {
            h.record_hit(page, frame);
        }
        w.with_locked(|p| {
            assert_eq!(p.eviction_order(), vec![2, 0, 3, 1]);
        });
    }

    #[test]
    fn miss_drains_queue_first() {
        let w = warmed(
            4,
            WrapperConfig::default()
                .with_queue_size(8)
                .with_batch_threshold(8),
        );
        let mut h = w.handle();
        h.record_hit(0, 0); // 0 becomes MRU once committed
                            // Miss must commit the hit *before* evicting, so victim is 1 not 0.
        let out = h.record_miss(99, None, &mut |_| true);
        assert_eq!(out.victim(), Some(1));
        assert_eq!(h.queued(), 0);
    }

    #[test]
    fn stale_entries_skipped() {
        let w = warmed(
            4,
            WrapperConfig::default()
                .with_queue_size(8)
                .with_batch_threshold(8),
        );
        let mut h = w.handle();
        h.record_hit(0, 0);
        // Invalidate page 0 out from under the queued entry.
        w.with_locked(|p| {
            p.remove(0);
        });
        h.flush();
        assert_eq!(w.counters().stale_skipped.get(), 1);
        assert_eq!(w.counters().committed.get(), 0);
    }

    #[test]
    fn lock_per_access_config_locks_every_hit() {
        let w = warmed(4, WrapperConfig::lock_per_access());
        let base = w.lock_stats().snapshot().acquisitions;
        let mut h = w.handle();
        for i in 0..10u64 {
            h.record_hit(i % 4, (i % 4) as u32);
        }
        assert_eq!(w.lock_stats().snapshot().acquisitions, base + 10);
    }

    #[test]
    fn handle_drop_flushes() {
        let w = warmed(
            4,
            WrapperConfig::default()
                .with_queue_size(16)
                .with_batch_threshold(16),
        );
        {
            let mut h = w.handle();
            h.record_hit(0, 0);
            h.record_hit(1, 1);
        } // dropped with 2 queued
        assert_eq!(w.counters().committed.get(), 2);
    }

    #[test]
    fn trylock_failure_defers_commit() {
        let w = warmed(
            4,
            WrapperConfig::default()
                .with_queue_size(8)
                .with_batch_threshold(2),
        );
        let held = w.lock.lock(); // block the lock externally
        let mut h = w.handle();
        h.record_hit(0, 0);
        h.record_hit(1, 1); // threshold: TryLock fails, queue not full -> defer
        assert_eq!(h.queued(), 2);
        assert!(w.lock_stats().snapshot().trylock_failures >= 1);
        drop(held);
        h.record_hit(2, 2); // past threshold again: TryLock succeeds now
        assert_eq!(h.queued(), 0);
    }

    #[test]
    fn full_queue_forces_blocking_lock() {
        let w = warmed(
            4,
            WrapperConfig::default()
                .with_queue_size(3)
                .with_batch_threshold(2),
        );
        let held = w.lock.lock();
        let mut h = w.handle();
        let flusher = std::thread::scope(|s| {
            h.record_hit(0, 0);
            h.record_hit(1, 1); // trylock fails, defer
            assert_eq!(h.queued(), 2);
            // Third hit fills the queue: must block until lock released.
            let t = s.spawn(move || {
                let mut h = h;
                h.record_hit(2, 2);
                h.queued()
            });
            // The spawned hit try-locks at the threshold, fails (we
            // hold the lock), and falls through to a blocking Lock().
            // Wait for that observable failure — the second recorded
            // one — rather than sleeping a fixed interval.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while w.lock_stats().snapshot().trylock_failures < 2 {
                assert!(
                    std::time::Instant::now() < deadline,
                    "spawned hit never attempted the lock"
                );
                std::thread::yield_now();
            }
            drop(held);
            t.join().unwrap()
        });
        assert_eq!(flusher, 0, "queue must be committed after blocking lock");
    }

    #[test]
    fn combining_publishes_instead_of_blocking() {
        let w = warmed(
            4,
            WrapperConfig::default()
                .with_queue_size(2)
                .with_batch_threshold(2)
                .with_combining(true),
        );
        let held = w.lock.lock();
        let base = w.lock_stats().snapshot().acquisitions;
        let mut h = w.handle();
        h.record_hit(0, 0);
        h.record_hit(1, 1); // TryLock fails, queue full: publish, don't block
        assert_eq!(h.queued(), 0, "full queue must be published");
        assert_eq!(w.counters().published.get(), 1);
        assert_eq!(
            w.lock_stats().snapshot().acquisitions,
            base,
            "publishing must not acquire the lock"
        );
        drop(held);
        // The thread's next commit must apply the older published batch
        // before the newer queue, or its access order is corrupted.
        h.record_hit(2, 2);
        h.record_hit(3, 3);
        assert_eq!(w.counters().reclaimed.get(), 1);
        assert_eq!(
            w.counters().committed.get() + w.counters().stale_skipped.get(),
            4
        );
        w.with_locked(|p| assert_eq!(p.eviction_order(), vec![0, 1, 2, 3]));
    }

    #[test]
    fn flat_combining_publishes_at_threshold_not_just_full() {
        let w = warmed(
            4,
            WrapperConfig::default()
                .with_queue_size(4)
                .with_batch_threshold(2)
                .with_combining_mode(Combining::Flat),
        );
        let held = w.lock_for_test();
        let mut h = w.handle();
        h.record_hit(0, 0);
        h.record_hit(1, 1); // threshold crossing, lock busy: publish
        assert_eq!(h.queued(), 0, "flat mode must publish at the threshold");
        assert_eq!(w.counters().published.get(), 1);
        // Next threshold crossing finds the slot still occupied: fall
        // back to accumulating (the queue is not full yet).
        h.record_hit(2, 2);
        h.record_hit(3, 3);
        assert_eq!(h.queued(), 2);
        assert_eq!(w.counters().publish_fallbacks.get(), 1);
        drop(held);
        h.flush();
        // Reclaim-before-commit: the published [0,1] lands before [2,3].
        assert_eq!(w.counters().reclaimed.get(), 1);
        w.with_locked(|p| assert_eq!(p.eviction_order(), vec![0, 1, 2, 3]));
    }

    #[test]
    fn overflow_mode_only_publishes_on_full_queue() {
        let w = warmed(
            4,
            WrapperConfig::default()
                .with_queue_size(4)
                .with_batch_threshold(2)
                .with_combining_mode(Combining::Overflow),
        );
        let held = w.lock_for_test();
        let mut h = w.handle();
        h.record_hit(0, 0);
        h.record_hit(1, 1); // threshold, lock busy, queue not full: defer
        assert_eq!(h.queued(), 2, "overflow mode must keep accumulating");
        assert_eq!(w.counters().published.get(), 0);
        h.record_hit(2, 2);
        h.record_hit(3, 3); // queue full: publish instead of blocking
        assert_eq!(h.queued(), 0);
        assert_eq!(w.counters().published.get(), 1);
        drop(held);
    }

    #[test]
    fn handle_churn_loses_nothing_with_flat_combining() {
        // Register/release cycles under contention: every recorded
        // access must be committed or stale-skipped by the time the
        // handles are gone, regardless of which slot each short-lived
        // handle got.
        let w = warmed(
            64,
            WrapperConfig::default()
                .with_queue_size(8)
                .with_batch_threshold(4)
                .with_combining(true),
        );
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let w = &w;
                s.spawn(move || {
                    for round in 0..50u64 {
                        let mut h = w.handle();
                        for i in 0..20u64 {
                            let page = (t * 16 + (round + i) % 16) % 64;
                            h.record_hit(page, page as u32);
                        }
                    } // drop: flush + release, every round
                });
            }
        });
        assert_eq!(w.counters().accesses.get(), 4 * 50 * 20);
        assert_eq!(
            w.counters().committed.get() + w.counters().stale_skipped.get(),
            4 * 50 * 20,
            "handle churn lost or duplicated accesses"
        );
        // Slots must all have been recycled: a fresh wave of handles
        // can still publish (i.e. they all got slots with live buffers).
        let held = w.lock_for_test();
        let mut fresh: Vec<_> = (0..8).map(|_| w.handle()).collect();
        let before = w.counters().published.get();
        for (i, h) in fresh.iter_mut().enumerate() {
            for j in 0..4u64 {
                let page = (i as u64 * 4 + j) % 64;
                h.record_hit(page, page as u32);
            }
        }
        assert_eq!(
            w.counters().published.get(),
            before + 8,
            "recycled slots must still publish"
        );
        drop(held);
        drop(fresh);
        w.with_locked(|p| p.check_invariants());
    }

    #[test]
    fn combining_snapshot_reflects_counters() {
        let w = warmed(
            4,
            WrapperConfig::default()
                .with_queue_size(2)
                .with_batch_threshold(2)
                .with_combining(true),
        );
        assert_eq!(w.combining_snapshot().mode, Combining::Flat);
        let held = w.lock_for_test();
        let mut publisher = w.handle();
        publisher.record_hit(0, 0);
        publisher.record_hit(1, 1); // published
        drop(held);
        let mut committer = w.handle();
        committer.record_hit(2, 2);
        committer.record_hit(3, 3); // commits, combines the published batch
        let snap = w.combining_snapshot();
        assert_eq!(snap.published, 1);
        assert_eq!(snap.combined_batches, 1);
        assert_eq!(snap.combined_entries, 2);
        assert_eq!(snap.combine_passes, 1);
        assert_eq!(snap.combine_depth_last, 1);
        assert_eq!(snap.combine_depth_peak, 1);
        assert!(snap.combine_passes <= MAX_COMBINE_PASSES as u64 * snap.combined_batches);
    }

    #[test]
    fn combiner_drains_other_threads_batches() {
        let w = warmed(
            4,
            WrapperConfig::default()
                .with_queue_size(2)
                .with_batch_threshold(2)
                .with_combining(true),
        );
        let held = w.lock.lock();
        let mut publisher = w.handle();
        publisher.record_hit(0, 0);
        publisher.record_hit(1, 1); // published
        drop(held);
        let mut committer = w.handle();
        committer.record_hit(2, 2);
        committer.record_hit(3, 3); // commits own queue, then combines
        assert_eq!(w.counters().combined_batches.get(), 1);
        assert_eq!(w.counters().combined_entries.get(), 2);
        assert_eq!(w.counters().committed.get(), 4);
        w.with_locked(|p| assert_eq!(p.eviction_order(), vec![2, 3, 0, 1]));
        // Nothing left for the publisher to reclaim.
        publisher.flush();
        assert_eq!(w.counters().reclaimed.get(), 0);
    }

    #[test]
    fn combining_preserves_seq_run_detection() {
        // The §III-A requirement, against an order-sensitive policy: a
        // thread's contiguous scan must still be detected as one run
        // even when part of it travels through a publication slot.
        use bpw_replacement::SeqLru;
        let w = BpWrapper::new(
            SeqLru::new(32),
            WrapperConfig::default()
                .with_queue_size(4)
                .with_batch_threshold(4)
                .with_combining(true),
        );
        w.with_locked(|p| {
            for i in 0..32u64 {
                p.record_miss(i, Some(i as u32), &mut |_| true);
            }
        });
        let warm_runs = w.with_locked(|p| p.detected_runs());
        let held = w.lock_for_test();
        let mut h = w.handle();
        for p in 0..4u64 {
            h.record_hit(p, p as u32); // overflows into a publication
        }
        assert_eq!(w.counters().published.get(), 1);
        drop(held);
        for p in 4..8u64 {
            h.record_hit(p, p as u32); // commit: reclaimed batch first
        }
        let runs = w.with_locked(|p| p.detected_runs());
        assert_eq!(
            runs,
            warm_runs + 1,
            "published-then-reclaimed accesses must replay in FIFO order"
        );
    }

    #[test]
    fn concurrent_hits_all_accounted_with_combining() {
        let w = warmed(64, WrapperConfig::default().with_combining(true));
        std::thread::scope(|s| {
            for t in 0..4 {
                let w = &w;
                s.spawn(move || {
                    let mut h = w.handle();
                    for i in 0..10_000u64 {
                        let page = (t * 16 + i % 16) % 64;
                        h.record_hit(page, page as u32);
                    }
                });
            }
        });
        assert_eq!(w.counters().accesses.get(), 40_000);
        assert_eq!(
            w.counters().committed.get() + w.counters().stale_skipped.get(),
            40_000,
            "published batches must all be applied by drop time"
        );
        w.with_locked(|p| p.check_invariants());
    }

    #[test]
    fn concurrent_hits_all_accounted() {
        let w = warmed(64, WrapperConfig::default());
        std::thread::scope(|s| {
            for t in 0..4 {
                let w = &w;
                s.spawn(move || {
                    let mut h = w.handle();
                    for i in 0..10_000u64 {
                        let page = (t * 16 + i % 16) % 64;
                        h.record_hit(page, page as u32);
                    }
                });
            }
        });
        assert_eq!(w.counters().accesses.get(), 40_000);
        assert_eq!(
            w.counters().committed.get() + w.counters().stale_skipped.get(),
            40_000,
            "every recorded access must be committed or skipped"
        );
        w.with_locked(|p| p.check_invariants());
    }
}
