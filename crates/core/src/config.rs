//! Tuning parameters for the BP-Wrapper framework.

/// How the wrapper handles a commit attempt that finds the replacement
/// lock busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Combining {
    /// The paper's pseudo-code: keep accumulating past the threshold and
    /// block in `Lock()` when the queue is full.
    #[default]
    Off,
    /// Publish to the handle's slot only when the queue is *full* — the
    /// PR 4 behavior: publication replaces the unavoidable blocking
    /// `Lock()`, nothing else.
    Overflow,
    /// Full flat combining: *any* contended threshold crossing publishes
    /// and returns, and every lock holder drains all pending slots per
    /// critical section. The lock is acquired by whoever wins it; the
    /// losers never block on the hit path at all.
    Flat,
}

impl Combining {
    /// Does this mode use the publication board at all?
    pub fn is_enabled(self) -> bool {
        !matches!(self, Combining::Off)
    }

    /// Stable lower-case name (used in STATS and bench rows).
    pub fn name(self) -> &'static str {
        match self {
            Combining::Off => "off",
            Combining::Overflow => "overflow",
            Combining::Flat => "flat",
        }
    }
}

impl std::fmt::Display for Combining {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Combining {
    type Err = String;

    /// Accepts the mode names plus `true`/`false` for compatibility with
    /// the old boolean `--combining` flag (`true` means full flat
    /// combining, the strongest mode).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" | "false" | "none" => Ok(Combining::Off),
            "overflow" => Ok(Combining::Overflow),
            "flat" | "true" | "on" => Ok(Combining::Flat),
            other => Err(format!(
                "unknown combining mode {other:?} (expected off|overflow|flat)"
            )),
        }
    }
}

/// Configuration of one [`BpWrapper`](crate::BpWrapper) instance.
///
/// The defaults are the values the paper uses in its evaluation (§IV-C):
/// FIFO queue size 64, batch threshold 32, both techniques enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WrapperConfig {
    /// `S` — capacity of each thread's private FIFO queue. When the queue
    /// is full a blocking `Lock()` is unavoidable.
    pub queue_size: usize,
    /// `T` — number of queued accesses that triggers a non-blocking
    /// `TryLock()` commit attempt. Must satisfy `1 <= T <= S`; the paper
    /// shows `T = S/2` works well and `T = S` (no try-lock headroom)
    /// hurts (§IV-E, Table III).
    pub batch_threshold: usize,
    /// Enable the batching technique. With batching disabled the wrapper
    /// degenerates to one lock acquisition per access (the paper's `pgQ`
    /// baseline when prefetching is also off, or `pgPre` with it on).
    pub batching: bool,
    /// Enable the prefetching technique: read the lock word and the
    /// policy metadata of queued accesses into the processor cache
    /// immediately before requesting the lock (§III-B).
    pub prefetching: bool,
    /// Combining commit mode: a thread that finds the lock busy
    /// *publishes* its batch to a per-handle slot and returns, and
    /// whichever thread next holds the lock applies published batches on
    /// the publishers' behalf. [`Combining::Off`] by default — it trades
    /// commit latency for fewer lock acquisitions and only pays off
    /// under contention.
    pub combining: Combining,
}

impl Default for WrapperConfig {
    fn default() -> Self {
        WrapperConfig {
            queue_size: 64,
            batch_threshold: 32,
            batching: true,
            prefetching: true,
            combining: Combining::Off,
        }
    }
}

impl WrapperConfig {
    /// The paper's `pgQ` baseline: lock on every access, no prefetch.
    pub fn lock_per_access() -> Self {
        WrapperConfig {
            queue_size: 1,
            batch_threshold: 1,
            batching: false,
            prefetching: false,
            combining: Combining::Off,
        }
    }

    /// The paper's `pgBat`: batching only.
    pub fn batching_only() -> Self {
        WrapperConfig {
            prefetching: false,
            ..Self::default()
        }
    }

    /// The paper's `pgPre`: prefetching only.
    pub fn prefetching_only() -> Self {
        WrapperConfig {
            queue_size: 1,
            batch_threshold: 1,
            batching: false,
            prefetching: true,
            combining: Combining::Off,
        }
    }

    /// The paper's `pgBatPre`: both techniques (the default).
    pub fn batching_and_prefetching() -> Self {
        Self::default()
    }

    /// Set queue size `S` (clamping threshold to stay valid).
    pub fn with_queue_size(mut self, s: usize) -> Self {
        assert!(s >= 1, "queue size must be at least 1");
        self.queue_size = s;
        self.batch_threshold = self.batch_threshold.min(s);
        self
    }

    /// Set batch threshold `T`.
    pub fn with_batch_threshold(mut self, t: usize) -> Self {
        assert!(t >= 1, "batch threshold must be at least 1");
        assert!(t <= self.queue_size, "threshold cannot exceed queue size");
        self.batch_threshold = t;
        self
    }

    /// Enable or disable combining commit. `true` selects full flat
    /// combining (the strongest mode); use
    /// [`with_combining_mode`](Self::with_combining_mode) for the
    /// overflow-only variant.
    pub fn with_combining(self, on: bool) -> Self {
        self.with_combining_mode(if on { Combining::Flat } else { Combining::Off })
    }

    /// Select a combining mode explicitly.
    pub fn with_combining_mode(mut self, mode: Combining) -> Self {
        self.combining = mode;
        self
    }

    /// Validate the parameter combination, panicking if inconsistent.
    pub fn validate(&self) {
        assert!(self.queue_size >= 1, "queue size must be at least 1");
        assert!(
            (1..=self.queue_size).contains(&self.batch_threshold),
            "batch threshold {} out of range 1..={}",
            self.batch_threshold,
            self.queue_size
        );
        if !self.batching {
            assert_eq!(
                self.queue_size, 1,
                "non-batching configurations must use queue size 1"
            );
            assert!(
                !self.combining.is_enabled(),
                "combining commit requires batching (there is no batch to publish)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = WrapperConfig::default();
        assert_eq!(c.queue_size, 64);
        assert_eq!(c.batch_threshold, 32);
        assert!(c.batching);
        assert!(c.prefetching);
        c.validate();
    }

    #[test]
    fn presets_are_valid() {
        for c in [
            WrapperConfig::lock_per_access(),
            WrapperConfig::batching_only(),
            WrapperConfig::prefetching_only(),
            WrapperConfig::batching_and_prefetching(),
        ] {
            c.validate();
        }
        assert!(!WrapperConfig::lock_per_access().batching);
        assert!(!WrapperConfig::batching_only().prefetching);
        assert!(WrapperConfig::prefetching_only().prefetching);
    }

    #[test]
    fn builders_keep_consistency() {
        let c = WrapperConfig::default().with_queue_size(16);
        assert_eq!(c.batch_threshold, 16);
        let c = c.with_batch_threshold(8);
        assert_eq!(c.batch_threshold, 8);
        c.validate();
    }

    #[test]
    fn combining_is_opt_in() {
        assert_eq!(WrapperConfig::default().combining, Combining::Off);
        let c = WrapperConfig::default().with_combining(true);
        assert_eq!(
            c.combining,
            Combining::Flat,
            "bool opt-in means full flat combining"
        );
        let c = WrapperConfig::default().with_combining_mode(Combining::Overflow);
        assert_eq!(c.combining, Combining::Overflow);
        c.validate();
    }

    #[test]
    fn combining_mode_parses() {
        for (s, want) in [
            ("off", Combining::Off),
            ("false", Combining::Off),
            ("overflow", Combining::Overflow),
            ("flat", Combining::Flat),
            ("true", Combining::Flat),
        ] {
            assert_eq!(s.parse::<Combining>().unwrap(), want);
        }
        assert!("sideways".parse::<Combining>().is_err());
        assert_eq!(Combining::Overflow.to_string(), "overflow");
    }

    #[test]
    #[should_panic(expected = "combining commit requires batching")]
    fn combining_without_batching_panics() {
        WrapperConfig::lock_per_access()
            .with_combining(true)
            .validate();
    }

    #[test]
    #[should_panic(expected = "threshold cannot exceed queue size")]
    fn threshold_above_size_panics() {
        let _ = WrapperConfig::default()
            .with_queue_size(4)
            .with_batch_threshold(5);
    }
}
