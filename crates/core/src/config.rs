//! Tuning parameters for the BP-Wrapper framework.

/// Configuration of one [`BpWrapper`](crate::BpWrapper) instance.
///
/// The defaults are the values the paper uses in its evaluation (§IV-C):
/// FIFO queue size 64, batch threshold 32, both techniques enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WrapperConfig {
    /// `S` — capacity of each thread's private FIFO queue. When the queue
    /// is full a blocking `Lock()` is unavoidable.
    pub queue_size: usize,
    /// `T` — number of queued accesses that triggers a non-blocking
    /// `TryLock()` commit attempt. Must satisfy `1 <= T <= S`; the paper
    /// shows `T = S/2` works well and `T = S` (no try-lock headroom)
    /// hurts (§IV-E, Table III).
    pub batch_threshold: usize,
    /// Enable the batching technique. With batching disabled the wrapper
    /// degenerates to one lock acquisition per access (the paper's `pgQ`
    /// baseline when prefetching is also off, or `pgPre` with it on).
    pub batching: bool,
    /// Enable the prefetching technique: read the lock word and the
    /// policy metadata of queued accesses into the processor cache
    /// immediately before requesting the lock (§III-B).
    pub prefetching: bool,
    /// Enable combining commit: a thread forced into a blocking
    /// `Lock()` by a full queue instead *publishes* its batch to a
    /// per-handle slot and returns, and whichever thread next holds the
    /// lock applies published batches on the publishers' behalf.
    /// Off by default — it trades commit latency for fewer lock
    /// acquisitions and is only worthwhile under heavy skew.
    pub combining: bool,
}

impl Default for WrapperConfig {
    fn default() -> Self {
        WrapperConfig {
            queue_size: 64,
            batch_threshold: 32,
            batching: true,
            prefetching: true,
            combining: false,
        }
    }
}

impl WrapperConfig {
    /// The paper's `pgQ` baseline: lock on every access, no prefetch.
    pub fn lock_per_access() -> Self {
        WrapperConfig {
            queue_size: 1,
            batch_threshold: 1,
            batching: false,
            prefetching: false,
            combining: false,
        }
    }

    /// The paper's `pgBat`: batching only.
    pub fn batching_only() -> Self {
        WrapperConfig {
            prefetching: false,
            ..Self::default()
        }
    }

    /// The paper's `pgPre`: prefetching only.
    pub fn prefetching_only() -> Self {
        WrapperConfig {
            queue_size: 1,
            batch_threshold: 1,
            batching: false,
            prefetching: true,
            combining: false,
        }
    }

    /// The paper's `pgBatPre`: both techniques (the default).
    pub fn batching_and_prefetching() -> Self {
        Self::default()
    }

    /// Set queue size `S` (clamping threshold to stay valid).
    pub fn with_queue_size(mut self, s: usize) -> Self {
        assert!(s >= 1, "queue size must be at least 1");
        self.queue_size = s;
        self.batch_threshold = self.batch_threshold.min(s);
        self
    }

    /// Set batch threshold `T`.
    pub fn with_batch_threshold(mut self, t: usize) -> Self {
        assert!(t >= 1, "batch threshold must be at least 1");
        assert!(t <= self.queue_size, "threshold cannot exceed queue size");
        self.batch_threshold = t;
        self
    }

    /// Enable or disable combining commit.
    pub fn with_combining(mut self, on: bool) -> Self {
        self.combining = on;
        self
    }

    /// Validate the parameter combination, panicking if inconsistent.
    pub fn validate(&self) {
        assert!(self.queue_size >= 1, "queue size must be at least 1");
        assert!(
            (1..=self.queue_size).contains(&self.batch_threshold),
            "batch threshold {} out of range 1..={}",
            self.batch_threshold,
            self.queue_size
        );
        if !self.batching {
            assert_eq!(
                self.queue_size, 1,
                "non-batching configurations must use queue size 1"
            );
            assert!(
                !self.combining,
                "combining commit requires batching (there is no batch to publish)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = WrapperConfig::default();
        assert_eq!(c.queue_size, 64);
        assert_eq!(c.batch_threshold, 32);
        assert!(c.batching);
        assert!(c.prefetching);
        c.validate();
    }

    #[test]
    fn presets_are_valid() {
        for c in [
            WrapperConfig::lock_per_access(),
            WrapperConfig::batching_only(),
            WrapperConfig::prefetching_only(),
            WrapperConfig::batching_and_prefetching(),
        ] {
            c.validate();
        }
        assert!(!WrapperConfig::lock_per_access().batching);
        assert!(!WrapperConfig::batching_only().prefetching);
        assert!(WrapperConfig::prefetching_only().prefetching);
    }

    #[test]
    fn builders_keep_consistency() {
        let c = WrapperConfig::default().with_queue_size(16);
        assert_eq!(c.batch_threshold, 16);
        let c = c.with_batch_threshold(8);
        assert_eq!(c.batch_threshold, 8);
        c.validate();
    }

    #[test]
    fn combining_is_opt_in() {
        assert!(!WrapperConfig::default().combining);
        let c = WrapperConfig::default().with_combining(true);
        assert!(c.combining);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "combining commit requires batching")]
    fn combining_without_batching_panics() {
        WrapperConfig::lock_per_access()
            .with_combining(true)
            .validate();
    }

    #[test]
    #[should_panic(expected = "threshold cannot exceed queue size")]
    fn threshold_above_size_panics() {
        let _ = WrapperConfig::default()
            .with_queue_size(4)
            .with_batch_threshold(5);
    }
}
