//! Adaptive batch threshold — an extension beyond the paper.
//!
//! Table III shows the threshold `T` trades freshness against TryLock
//! headroom: too low wastes acquisition attempts on tiny batches, too
//! high (T → S) removes the non-blocking path entirely. The paper picks
//! T = S/2 statically. This module adapts `T` per thread from observed
//! TryLock outcomes:
//!
//! * failures are frequent → the lock is busy → raise `T` (commit
//!   bigger, rarer batches), up to `3S/4` so TryLock headroom survives;
//! * failures stop → the lock is quiet → decay `T` toward a floor so
//!   history reaches the policy promptly.
//!
//! The adaptation needs no coordination: each handle reacts to its own
//! TryLock outcomes, which are themselves a (free) sample of lock
//! pressure.

use bpw_replacement::{FrameId, MissOutcome, PageId, ReplacementPolicy};

use crate::queue::AccessQueue;
use crate::wrapper::BpWrapper;

/// Bounds and cadence of the adaptation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Lowest threshold the decay may reach.
    pub min_threshold: usize,
    /// Initial threshold.
    pub initial_threshold: usize,
    /// Commit attempts per adaptation window.
    pub window: u32,
    /// Raise `T` when the window's failure fraction exceeds this.
    pub raise_above: f64,
    /// Lower `T` when the window's failure fraction falls below this.
    pub lower_below: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_threshold: 4,
            initial_threshold: 32,
            window: 16,
            raise_above: 0.25,
            lower_below: 0.05,
        }
    }
}

/// A per-thread handle with a self-adjusting batch threshold. Built from
/// any [`BpWrapper`]; the wrapper's static `batch_threshold` is ignored
/// in favour of the adaptive one (its `queue_size` still caps batches
/// and forces the blocking path when full).
pub struct AdaptiveHandle<'w, P: ReplacementPolicy> {
    wrapper: &'w BpWrapper<P>,
    queue: AccessQueue,
    cfg: AdaptiveConfig,
    threshold: usize,
    attempts: u32,
    failures: u32,
}

impl<'w, P: ReplacementPolicy> AdaptiveHandle<'w, P> {
    /// Create a handle with default adaptation bounds.
    pub fn new(wrapper: &'w BpWrapper<P>) -> Self {
        Self::with_config(wrapper, AdaptiveConfig::default())
    }

    /// Create a handle with explicit adaptation bounds.
    pub fn with_config(wrapper: &'w BpWrapper<P>, cfg: AdaptiveConfig) -> Self {
        let s = wrapper.config().queue_size;
        assert!(s >= 2, "adaptive batching needs a queue of at least 2");
        assert!(cfg.min_threshold >= 1 && cfg.min_threshold < s);
        let threshold = cfg.initial_threshold.clamp(cfg.min_threshold, 3 * s / 4);
        AdaptiveHandle {
            wrapper,
            queue: AccessQueue::new(s),
            cfg,
            threshold,
            attempts: 0,
            failures: 0,
        }
    }

    /// Current threshold (adapts over time).
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    fn max_threshold(&self) -> usize {
        (3 * self.wrapper.config().queue_size / 4).max(self.cfg.min_threshold)
    }

    fn note_attempt(&mut self, failed: bool) {
        self.attempts += 1;
        if failed {
            self.failures += 1;
        }
        if self.attempts >= self.cfg.window {
            let rate = self.failures as f64 / self.attempts as f64;
            if rate > self.cfg.raise_above {
                self.threshold = (self.threshold * 2).min(self.max_threshold());
            } else if rate < self.cfg.lower_below {
                self.threshold = (self.threshold / 2).max(self.cfg.min_threshold);
            }
            self.attempts = 0;
            self.failures = 0;
        }
    }

    /// Record a hit (paper Fig. 4 semantics with the adaptive `T`).
    pub fn record_hit(&mut self, page: PageId, frame: FrameId) {
        self.wrapper.counters().accesses.incr();
        self.queue.push(page, frame);
        if self.queue.len() >= self.threshold {
            match self.wrapper.try_commit(&mut self.queue) {
                Ok(()) => self.note_attempt(false),
                Err(()) => {
                    self.note_attempt(true);
                    if self.queue.is_full() {
                        self.wrapper.blocking_commit(&mut self.queue);
                    }
                }
            }
        }
    }

    /// Record a miss: blocking lock, committed queue, policy miss path.
    pub fn record_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        self.wrapper
            .miss_commit(&mut self.queue, page, free, evictable)
    }

    /// Commit whatever is queued.
    pub fn flush(&mut self) {
        self.wrapper.blocking_commit(&mut self.queue);
    }

    /// Accesses currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }
}

impl<'w, P: ReplacementPolicy> Drop for AdaptiveHandle<'w, P> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WrapperConfig;
    use bpw_replacement::Lru;

    fn warmed(frames: usize) -> BpWrapper<Lru> {
        let w = BpWrapper::new(Lru::new(frames), WrapperConfig::default());
        w.with_locked(|p| {
            for i in 0..frames as u64 {
                p.record_miss(i, Some(i as u32), &mut |_| true);
            }
        });
        w
    }

    #[test]
    fn threshold_decays_when_uncontended() {
        let w = warmed(64);
        let mut h = AdaptiveHandle::new(&w);
        let start = h.threshold();
        for i in 0..50_000u64 {
            h.record_hit(i % 64, (i % 64) as u32);
        }
        assert!(
            h.threshold() <= AdaptiveConfig::default().min_threshold,
            "uncontended threshold should decay ({} -> {})",
            start,
            h.threshold()
        );
    }

    #[test]
    fn threshold_rises_under_contention() {
        let w = warmed(64);
        let mut h = AdaptiveHandle::new(&w);
        // Hold the lock from another guard so every TryLock fails.
        let _held = w.lock_for_test();
        for i in 0..5_000u64 {
            if h.queued() + 1 >= w.config().queue_size {
                break; // next push would force a blocking commit: stop
            }
            h.record_hit(i % 64, (i % 64) as u32);
        }
        assert!(
            h.threshold() > AdaptiveConfig::default().initial_threshold / 2,
            "threshold should not decay while the lock is busy"
        );
        drop(_held);
        h.flush();
    }

    #[test]
    fn adaptation_never_leaves_bounds() {
        let w = warmed(32);
        let cfg = AdaptiveConfig {
            min_threshold: 2,
            initial_threshold: 8,
            ..Default::default()
        };
        let mut h = AdaptiveHandle::with_config(&w, cfg);
        for i in 0..20_000u64 {
            h.record_hit(i % 32, (i % 32) as u32);
            assert!((2..=24).contains(&h.threshold()));
        }
    }

    #[test]
    fn accounting_matches_plain_handle() {
        let w = warmed(64);
        {
            let mut h = AdaptiveHandle::new(&w);
            for i in 0..10_000u64 {
                h.record_hit(i % 64, (i % 64) as u32);
            }
        }
        let c = w.counters();
        // 64 warmup misses are not recorded through the handle.
        assert_eq!(c.accesses.get(), 10_000);
        assert_eq!(c.committed.get() + c.stale_skipped.get(), 10_000);
    }

    #[test]
    fn miss_path_works() {
        let w = warmed(4);
        let mut h = AdaptiveHandle::new(&w);
        h.record_hit(0, 0);
        let out = h.record_miss(99, None, &mut |_| true);
        assert_eq!(
            out.victim(),
            Some(1),
            "hit on 0 must commit before the miss"
        );
    }
}
