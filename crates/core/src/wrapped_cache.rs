//! A self-contained cache driver over a wrapped policy: page table,
//! free-frame list, and a private access queue, mirroring
//! [`CacheSim`](bpw_replacement::CacheSim) but routing every access
//! through the BP-Wrapper protocol.
//!
//! Its main purpose is verifying the paper's correctness claims:
//!
//! * delaying the bookkeeping "will not affect the threads getting
//!   correct data from the buffer" (§III-A), and
//! * "our techniques do not hurt hit ratios" (§IV-F, Fig. 8) — in fact,
//!   for a single thread the committed operation sequence is *identical*
//!   to the unwrapped policy's, because queued hits are always applied,
//!   in order, before any miss decision.

use std::collections::HashMap;
use std::sync::Arc;

use bpw_replacement::{FrameId, MissOutcome, PageId, ReplacementPolicy, SimStats};

use crate::config::WrapperConfig;
use crate::wrapper::{ArcAccessHandle, BpWrapper};

/// Single-threaded cache driver over a BP-wrapped policy.
pub struct WrappedCache<P: ReplacementPolicy> {
    handle: ArcAccessHandle<P>,
    map: HashMap<PageId, FrameId>,
    free: Vec<FrameId>,
    stats: SimStats,
    evictions: Option<Vec<PageId>>,
}

impl<P: ReplacementPolicy> WrappedCache<P> {
    /// Wrap `policy` with `config` and build a driver around it.
    pub fn new(policy: P, config: WrapperConfig) -> Self {
        let frames = policy.frames();
        assert_eq!(
            policy.resident_count(),
            0,
            "WrappedCache requires an empty policy"
        );
        let wrapper = Arc::new(BpWrapper::new(policy, config));
        WrappedCache {
            handle: wrapper.handle_arc(),
            map: HashMap::with_capacity(frames),
            free: (0..frames as FrameId).rev().collect(),
            stats: SimStats::default(),
            evictions: None,
        }
    }

    /// Opt into recording the victim page of every eviction, in order
    /// (mirrors [`CacheSim::with_eviction_log`](bpw_replacement::CacheSim::with_eviction_log)).
    pub fn with_eviction_log(mut self) -> Self {
        self.evictions = Some(Vec::new());
        self
    }

    /// Victim pages in eviction order (empty unless opted in).
    pub fn eviction_log(&self) -> &[PageId] {
        self.evictions.as_deref().unwrap_or(&[])
    }

    /// Access `page`; returns `true` on a hit.
    pub fn access(&mut self, page: PageId) -> bool {
        if let Some(&frame) = self.map.get(&page) {
            self.handle.record_hit(page, frame);
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        let free = self.free.pop();
        match self.handle.record_miss(page, free, &mut |_| true) {
            MissOutcome::AdmittedFree(f) => {
                self.map.insert(page, f);
            }
            MissOutcome::Evicted { frame, victim } => {
                self.map.remove(&victim);
                self.map.insert(page, frame);
                if let Some(log) = self.evictions.as_mut() {
                    log.push(victim);
                }
            }
            MissOutcome::NoEvictableFrame => {
                panic!("wrapped policy failed to evict with a permissive filter");
            }
        }
        false
    }

    /// Run a whole reference string.
    pub fn run<I: IntoIterator<Item = PageId>>(&mut self, trace: I) -> SimStats {
        for page in trace {
            self.access(page);
        }
        self.stats
    }

    /// True if `page` is currently cached.
    pub fn is_resident(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// The underlying wrapper (lock stats, counters).
    pub fn wrapper(&self) -> &Arc<BpWrapper<P>> {
        self.handle.wrapper()
    }

    /// Commit any queued accesses.
    pub fn flush(&mut self) {
        self.handle.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpw_replacement::{CacheSim, PolicyKind};

    /// A skewed synthetic trace mixing a hot set with cold churn.
    fn mixed_trace(len: usize) -> Vec<PageId> {
        (0..len as u64)
            .map(|i| {
                if i % 3 == 0 {
                    1000 + (i * 7919) % 500 // cold-ish
                } else {
                    i % 24 // hot set
                }
            })
            .collect()
    }

    #[test]
    fn single_thread_equivalence_all_policies() {
        // The headline correctness property: with one thread, a
        // BP-wrapped policy makes byte-identical decisions to the bare
        // policy — batching only changes *when* bookkeeping runs, never
        // its order relative to miss decisions.
        let trace = mixed_trace(4000);
        for kind in PolicyKind::ALL {
            let mut bare = CacheSim::new(kind.build(32));
            let mut wrapped = WrappedCache::new(kind.build(32), WrapperConfig::default());
            for &p in &trace {
                let a = bare.access(p);
                let b = wrapped.access(p);
                assert_eq!(a, b, "{kind}: hit/miss diverged on page {p}");
            }
            assert_eq!(bare.stats(), wrapped.stats(), "{kind}");
        }
    }

    #[test]
    fn equivalence_holds_for_every_queue_size() {
        let trace = mixed_trace(2000);
        for s in [1usize, 2, 3, 7, 16, 64, 128] {
            let cfg = WrapperConfig {
                queue_size: s,
                batch_threshold: (s / 2).max(1),
                batching: true,
                prefetching: s % 2 == 0, // exercise both prefetch settings
                combining: crate::Combining::Off,
            };
            let mut bare = CacheSim::new(PolicyKind::TwoQ.build(16));
            let mut wrapped = WrappedCache::new(PolicyKind::TwoQ.build(16), cfg);
            let a = bare.run(trace.iter().copied());
            let b = wrapped.run(trace.iter().copied());
            assert_eq!(a, b, "queue size {s}");
        }
    }

    #[test]
    fn batching_reduces_lock_acquisitions() {
        let trace: Vec<PageId> = (0..10_000u64).map(|i| i % 16).collect();
        let mut wrapped = WrappedCache::new(PolicyKind::Lirs.build(16), WrapperConfig::default());
        wrapped.run(trace.iter().copied());
        wrapped.flush();
        let acq = wrapped.wrapper().lock_stats().snapshot().acquisitions;
        // ~10k hit accesses in batches of >= 32: far fewer than 10k locks.
        assert!(
            acq < 500,
            "expected batched commits, got {acq} acquisitions"
        );
        let mut unbatched =
            WrappedCache::new(PolicyKind::Lirs.build(16), WrapperConfig::lock_per_access());
        unbatched.run(trace.iter().copied());
        let acq2 = unbatched.wrapper().lock_stats().snapshot().acquisitions;
        assert!(
            acq2 >= 10_000,
            "lock-per-access must lock every hit, got {acq2}"
        );
    }

    #[test]
    fn no_accesses_lost() {
        let mut wrapped = WrappedCache::new(PolicyKind::Mq.build(8), WrapperConfig::default());
        wrapped.run((0..1000u64).map(|i| i % 12));
        wrapped.flush();
        let c = wrapped.wrapper().counters();
        assert_eq!(c.accesses.get(), 1000);
        // hits committed (none stale in single-thread use) + misses
        let snap = wrapped.stats();
        assert_eq!(c.committed.get(), snap.hits);
        assert_eq!(c.stale_skipped.get(), 0);
    }
}
