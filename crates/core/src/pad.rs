//! Cache-line padding for hot shared structs.
//!
//! The wrapper's contended structures — publication slots, free-list
//! heads, per-wrapper counters — are arrays of small atomics. Packed
//! densely, eight of them share one 64-byte line and every CAS by one
//! thread invalidates the line under seven others (false sharing).
//! [`CachePadded`] aligns and pads its contents to a cache line so each
//! element owns its line.
//!
//! The vendored crossbeam has an equivalent wrapper (128-byte aligned,
//! used by `bpw-metrics`); core deliberately does not depend on
//! crossbeam, and 64 bytes is the actual line size on every target this
//! repo builds for, so this is a standalone `#[repr(align(64))]`
//! wrapper.

/// Pads and aligns `T` to a 64-byte cache line.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap, discarding the padding.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_atomics_do_not_share_lines() {
        use std::sync::atomic::AtomicU64;
        assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 64);
        assert!(std::mem::size_of::<CachePadded<AtomicU64>>() >= 64);
        let pair: [CachePadded<AtomicU64>; 2] = [
            CachePadded::new(AtomicU64::new(0)),
            CachePadded::new(AtomicU64::new(0)),
        ];
        let a = &pair[0] as *const _ as usize;
        let b = &pair[1] as *const _ as usize;
        assert!(b - a >= 64, "adjacent padded atomics share a line");
    }

    #[test]
    fn deref_reaches_the_value() {
        let mut c = CachePadded::new(7u32);
        assert_eq!(*c, 7);
        *c = 9;
        assert_eq!(c.into_inner(), 9);
    }
}
