//! The per-thread private FIFO access queue (paper §III-A, Fig. 4).
//!
//! Each transaction-processing thread records its buffer hits here
//! instead of taking the replacement lock. An entry mirrors the paper's
//! PostgreSQL implementation: "each entry in the FIFO queues consists of
//! two fields: one is a pointer to the meta-data of a buffer page
//! (BufferDesc structure), and the other stores BufferTag" (§IV-B) — for
//! us, a frame id and a page id. The page id is compared against the
//! frame's current occupant at commit time so accesses to pages that were
//! evicted or invalidated in the meantime are skipped.

use bpw_replacement::{FrameId, PageId};

/// One recorded page access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEntry {
    /// The page that was hit (the `BufferTag`).
    pub page: PageId,
    /// The frame it occupied at access time (the `BufferDesc` pointer).
    pub frame: FrameId,
}

/// A fixed-capacity FIFO of recorded accesses, owned by one thread.
/// Never shared: the paper chooses private queues precisely to avoid
/// synchronization and coherence cost on the recording path.
#[derive(Debug)]
pub struct AccessQueue {
    entries: Vec<AccessEntry>,
    capacity: usize,
}

impl AccessQueue {
    /// Create a queue with capacity `S`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        AccessQueue {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Queue capacity `S`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of recorded accesses (`Tail` in the paper's pseudo-code).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no accesses are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if the queue cannot accept another access.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Record an access. Panics if full — callers must commit first
    /// (the paper's pseudo-code guarantees this by committing whenever
    /// `Tail >= S`).
    pub fn push(&mut self, page: PageId, frame: FrameId) {
        assert!(
            !self.is_full(),
            "access queue overflow: commit before pushing"
        );
        self.entries.push(AccessEntry { page, frame });
    }

    /// The recorded accesses in FIFO order.
    pub fn entries(&self) -> &[AccessEntry] {
        &self.entries
    }

    /// Remove and return all recorded accesses in FIFO order.
    pub fn drain(&mut self) -> std::vec::Drain<'_, AccessEntry> {
        self.entries.drain(..)
    }

    /// Discard all recorded accesses (the `Tail = 0` reset).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The queue's backing storage, for an O(1) ownership exchange with
    /// a publication buffer (combining publish swaps `Vec` internals by
    /// pointer instead of copying entries or allocating). The caller
    /// must leave behind storage with at least [`capacity`](Self::capacity)
    /// reserved so later pushes never reallocate.
    pub(crate) fn storage_mut(&mut self) -> &mut Vec<AccessEntry> {
        &mut self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = AccessQueue::new(4);
        q.push(10, 0);
        q.push(20, 1);
        q.push(30, 2);
        let order: Vec<PageId> = q.drain().map(|e| e.page).collect();
        assert_eq!(order, vec![10, 20, 30]);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_tracking() {
        let mut q = AccessQueue::new(2);
        assert!(!q.is_full());
        q.push(1, 0);
        q.push(2, 1);
        assert!(q.is_full());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut q = AccessQueue::new(1);
        q.push(1, 0);
        q.push(2, 1);
    }

    #[test]
    fn entries_view() {
        let mut q = AccessQueue::new(3);
        q.push(5, 2);
        assert_eq!(q.entries(), &[AccessEntry { page: 5, frame: 2 }]);
    }
}
