//! The design alternative the paper rejects in §III-A: "an alternative
//! is to use one common FIFO queue shared by multiple threads. However,
//! we choose to use a private FIFO queue for each thread" because
//!
//! 1. a private queue "keeps the precise order of the page accesses
//!    that occur in the corresponding thread" — essential for
//!    order-sensitive policies like SEQ — whereas a shared queue records
//!    the *interleaved* order, chopping one thread's sequential run into
//!    fragments; and
//! 2. a shared queue pays "synchronization and coherence cost" on every
//!    single recording, reintroducing a per-access lock (just a cheaper
//!    one).
//!
//! This module implements that alternative faithfully so the
//! `ablation_queue_design` benchmark can quantify both costs.

use std::sync::Arc;

use bpw_metrics::LockStats;
use bpw_replacement::{FrameId, MissOutcome, PageId, ReplacementPolicy};

use crate::lock::InstrumentedLock;
use crate::queue::AccessEntry;

/// A wrapper using one *shared* FIFO queue for all threads (the
/// rejected design). API mirrors [`BpWrapper`](crate::BpWrapper) minus
/// per-thread handles: every method is `&self`.
pub struct SharedQueueWrapper<P: ReplacementPolicy> {
    policy: InstrumentedLock<P>,
    /// The shared queue and its own latch — the per-access
    /// synchronization the paper's private queues avoid.
    queue: InstrumentedLock<Vec<AccessEntry>>,
    queue_size: usize,
    batch_threshold: usize,
}

impl<P: ReplacementPolicy> SharedQueueWrapper<P> {
    /// Wrap `policy` with a shared queue of `queue_size` entries,
    /// committed at `batch_threshold`.
    pub fn new(policy: P, queue_size: usize, batch_threshold: usize) -> Self {
        assert!(queue_size >= 1 && (1..=queue_size).contains(&batch_threshold));
        SharedQueueWrapper {
            policy: InstrumentedLock::new(policy, Arc::new(LockStats::new())),
            queue: InstrumentedLock::new(
                Vec::with_capacity(queue_size),
                Arc::new(LockStats::new()),
            ),
            queue_size,
            batch_threshold,
        }
    }

    /// Statistics of the replacement-policy lock.
    pub fn policy_lock_stats(&self) -> &Arc<LockStats> {
        self.policy.stats()
    }

    /// Statistics of the shared queue's latch (the extra cost).
    pub fn queue_lock_stats(&self) -> &Arc<LockStats> {
        self.queue.stats()
    }

    /// Record a hit. Takes the queue latch (every time); commits the
    /// whole queue under the policy lock when the threshold is reached.
    pub fn record_hit(&self, page: PageId, frame: FrameId) {
        let batch = {
            let mut q = self.queue.lock();
            q.push(AccessEntry { page, frame });
            if q.len() >= self.batch_threshold {
                match self.policy.try_lock() {
                    Some(mut guard) => {
                        let batch: Vec<AccessEntry> = q.drain(..).collect();
                        drop(q);
                        Self::commit(&mut guard, &batch);
                        guard.cover_accesses(batch.len() as u64);
                        return;
                    }
                    None => {
                        if q.len() >= self.queue_size {
                            Some(q.drain(..).collect::<Vec<_>>())
                        } else {
                            None
                        }
                    }
                }
            } else {
                None
            }
        };
        if let Some(batch) = batch {
            // Queue full: blocking commit (queue latch already released).
            let mut guard = self.policy.lock();
            Self::commit(&mut guard, &batch);
            guard.cover_accesses(batch.len() as u64);
        }
    }

    /// Record a miss: drain the shared queue and run the miss path.
    pub fn record_miss(
        &self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        let batch: Vec<AccessEntry> = self.queue.lock().drain(..).collect();
        let mut guard = self.policy.lock();
        Self::commit(&mut guard, &batch);
        let out = guard.record_miss(page, free, evictable);
        guard.cover_accesses(batch.len() as u64 + 1);
        out
    }

    /// Commit any queued accesses.
    pub fn flush(&self) {
        let batch: Vec<AccessEntry> = self.queue.lock().drain(..).collect();
        if batch.is_empty() {
            return;
        }
        let mut guard = self.policy.lock();
        Self::commit(&mut guard, &batch);
        guard.cover_accesses(batch.len() as u64);
    }

    fn commit(policy: &mut P, batch: &[AccessEntry]) {
        for e in batch {
            if policy.page_at(e.frame) == Some(e.page) {
                policy.record_hit(e.frame);
            }
        }
    }

    /// Run `f` with the policy locked.
    pub fn with_locked<R>(&self, f: impl FnOnce(&mut P) -> R) -> R {
        let mut guard = self.policy.lock();
        f(&mut guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpw_replacement::Lru;

    fn warmed(n: usize, s: usize, t: usize) -> SharedQueueWrapper<Lru> {
        let w = SharedQueueWrapper::new(Lru::new(n), s, t);
        w.with_locked(|p| {
            for i in 0..n as u64 {
                p.record_miss(i, Some(i as u32), &mut |_| true);
            }
        });
        w
    }

    #[test]
    fn commits_at_threshold() {
        let w = warmed(8, 8, 4);
        let base = w.policy_lock_stats().snapshot().acquisitions;
        for i in 0..3u64 {
            w.record_hit(i, i as u32);
        }
        assert_eq!(w.policy_lock_stats().snapshot().acquisitions, base);
        w.record_hit(3, 3);
        assert_eq!(w.policy_lock_stats().snapshot().acquisitions, base + 1);
    }

    #[test]
    fn queue_latch_taken_every_access() {
        let w = warmed(8, 64, 32);
        let base = w.queue_lock_stats().snapshot().acquisitions;
        for i in 0..10u64 {
            w.record_hit(i % 8, (i % 8) as u32);
        }
        assert_eq!(
            w.queue_lock_stats().snapshot().acquisitions,
            base + 10,
            "shared queue must synchronize on every recording"
        );
    }

    #[test]
    fn interleaved_recording_scrambles_order() {
        // Two "threads" alternating hits: the commit order seen by the
        // policy is the interleaved order, not per-thread order.
        let w = warmed(8, 8, 8);
        for i in 0..4u64 {
            w.record_hit(i, i as u32); // thread A: pages 0..4
            w.record_hit(4 + i, (4 + i) as u32); // thread B: pages 4..8
        }
        // After commit, LRU order reflects interleaving: 0,4,1,5,2,6,3,7.
        w.with_locked(|p| {
            assert_eq!(p.eviction_order(), vec![0, 4, 1, 5, 2, 6, 3, 7]);
        });
    }

    #[test]
    fn miss_drains_queue() {
        let w = warmed(4, 16, 16);
        w.record_hit(0, 0);
        let out = w.record_miss(99, None, &mut |_| true);
        // Hit on 0 committed first: victim is 1, not 0.
        assert_eq!(out.victim(), Some(1));
    }

    #[test]
    fn concurrent_use_is_safe() {
        let w = std::sync::Arc::new(warmed(64, 64, 32));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let w = std::sync::Arc::clone(&w);
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        let page = (t * 16 + i) % 64;
                        w.record_hit(page, page as u32);
                    }
                });
            }
        });
        w.flush();
        w.with_locked(|p| p.check_invariants());
    }
}
