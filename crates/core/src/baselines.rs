//! Baseline synchronization schemes the paper compares against:
//!
//! * [`ClockHitPath`] — the `pgClock` approach: CLOCK needs no lock on a
//!   hit (an atomic reference-bit set suffices), giving optimal
//!   scalability at the price of CLOCK's hit ratio. The paper uses this
//!   as the scalability gold standard.
//! * [`PartitionedCache`] — the distributed-lock approach (§V-A, as in
//!   Oracle Universal Server / ADABAS / Mr.LRU): hash pages into
//!   partitions, each with a private policy and lock. Contention drops,
//!   but history is fragmented and hot partitions still collide.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use bpw_metrics::LockStats;
use bpw_replacement::{CacheSim, PageId, ReplacementPolicy, SimStats};

use crate::lock::InstrumentedLock;

/// The lock-free hit path of CLOCK: per-frame reference bits set with a
/// relaxed atomic store. Models what PostgreSQL 8.x does on a buffer hit
/// (`pgClock` in the paper) — the miss path still needs a lock, but the
/// paper's scalability experiments are hit-only.
pub struct ClockHitPath {
    referenced: Vec<AtomicU8>,
}

impl ClockHitPath {
    /// Reference bits for `frames` buffer frames.
    pub fn new(frames: usize) -> Self {
        ClockHitPath {
            referenced: (0..frames).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    /// Number of frames.
    pub fn frames(&self) -> usize {
        self.referenced.len()
    }

    /// Record a hit: set the reference bit. No lock, no ordering needed.
    #[inline]
    pub fn record_hit(&self, frame: u32) {
        self.referenced[frame as usize].store(1, Ordering::Relaxed);
    }

    /// Read a reference bit (used by the sweep, under the miss lock).
    pub fn referenced(&self, frame: u32) -> bool {
        self.referenced[frame as usize].load(Ordering::Relaxed) != 0
    }

    /// Clear a reference bit (sweep).
    pub fn clear(&self, frame: u32) {
        self.referenced[frame as usize].store(0, Ordering::Relaxed);
    }
}

/// The distributed-lock baseline: `n` independent policy instances, each
/// guarding `1/n`-th of the frames behind its own lock; pages are hashed
/// to partitions so the same page always lands in the same partition
/// (the Mr.LRU fix that keeps ghost-list policies functional).
pub struct PartitionedCache<P: ReplacementPolicy> {
    parts: Vec<InstrumentedLock<CacheSim<P>>>,
    stats: Arc<LockStats>,
}

impl<P: ReplacementPolicy> PartitionedCache<P> {
    /// Build `partitions` caches of `frames_per_partition` frames each,
    /// using `make` to construct each partition's policy.
    pub fn new(
        partitions: usize,
        frames_per_partition: usize,
        mut make: impl FnMut(usize) -> P,
    ) -> Self {
        assert!(partitions >= 1, "need at least one partition");
        let stats = Arc::new(LockStats::new());
        let parts = (0..partitions)
            .map(|_| {
                InstrumentedLock::new(
                    CacheSim::new(make(frames_per_partition)),
                    Arc::clone(&stats),
                )
            })
            .collect();
        PartitionedCache { parts, stats }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Shared lock statistics across all partition locks.
    pub fn lock_stats(&self) -> &Arc<LockStats> {
        &self.stats
    }

    /// Partition a page hashes to (splitmix64, so consecutive page ids
    /// spread uniformly).
    pub fn partition_of(&self, page: PageId) -> usize {
        let mut x = page.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x % self.parts.len() as u64) as usize
    }

    /// Access `page` through its partition's lock; returns `true` on hit.
    pub fn access(&self, page: PageId) -> bool {
        let part = self.partition_of(page);
        let mut guard = self.parts[part].lock();
        let hit = guard.access(page);
        guard.cover_accesses(1);
        hit
    }

    /// Aggregate hit/miss statistics over all partitions.
    pub fn stats(&self) -> SimStats {
        let mut total = SimStats::default();
        for p in &self.parts {
            let s = p.lock();
            total.hits += s.stats().hits;
            total.misses += s.stats().misses;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpw_replacement::{Lru, TwoQ};

    #[test]
    fn clock_hit_path_sets_bits_without_lock() {
        let c = ClockHitPath::new(8);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.record_hit(t * 2);
                        c.record_hit(t * 2 + 1);
                    }
                });
            }
        });
        for f in 0..8 {
            assert!(c.referenced(f));
            c.clear(f);
            assert!(!c.referenced(f));
        }
    }

    #[test]
    fn partition_is_deterministic_and_uniformish() {
        let pc = PartitionedCache::new(8, 4, |_| Lru::new(4));
        let mut counts = [0usize; 8];
        for page in 0..8000u64 {
            assert_eq!(pc.partition_of(page), pc.partition_of(page));
            counts[pc.partition_of(page)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "partition skew: {counts:?}");
        }
    }

    #[test]
    fn partitioned_cache_hits_and_misses() {
        let pc = PartitionedCache::new(4, 8, |_| TwoQ::new(8));
        for page in 0..16u64 {
            assert!(!pc.access(page));
        }
        for page in 0..16u64 {
            assert!(pc.access(page), "page {page} should still be cached");
        }
        let s = pc.stats();
        assert_eq!(s.hits, 16);
        assert_eq!(s.misses, 16);
        assert!(pc.lock_stats().snapshot().acquisitions >= 32);
    }

    #[test]
    fn partitioned_history_is_fragmented() {
        // The paper's §V-A criticism: partitioning divides capacity, so a
        // working set that fits a global cache may thrash partitions.
        // With 4 partitions x 4 frames, a 16-page working set only fits
        // if hashing spreads it 4/4/4/4 — generally it does not.
        let pc = PartitionedCache::new(4, 4, |_| Lru::new(4));
        let mut global = CacheSim::new(Lru::new(16));
        let trace: Vec<u64> = (0..16u64).cycle().take(160).collect();
        for &p in &trace {
            pc.access(p);
            global.access(p);
        }
        let part_ratio = pc.stats().hit_ratio();
        let global_ratio = global.stats().hit_ratio();
        assert!(
            part_ratio <= global_ratio,
            "partitioned ({part_ratio:.3}) cannot beat global ({global_ratio:.3}) on a cyclic fit"
        );
    }
}
