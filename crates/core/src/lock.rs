//! An instrumented exclusive lock ("latch") around the replacement
//! policy, reporting the paper's lock metrics: contended acquisitions,
//! try-lock failures, wait time, and hold time.

use std::sync::Arc;
use std::time::Instant;

use bpw_metrics::LockStats;
use parking_lot::{Mutex, MutexGuard};

/// Exclusive lock over `T` with contention accounting.
pub struct InstrumentedLock<T> {
    inner: Mutex<T>,
    stats: Arc<LockStats>,
    wait_kind: bpw_trace::EventKind,
    wait_arg: u64,
}

/// RAII guard for [`InstrumentedLock`]. Reports hold time and the number
/// of accesses the critical section covered when dropped.
pub struct LockGuard<'a, T> {
    guard: Option<MutexGuard<'a, T>>,
    stats: &'a LockStats,
    acquired_at: Instant,
    accesses: u64,
}

impl<T> InstrumentedLock<T> {
    /// Wrap `value`, reporting into `stats`.
    pub fn new(value: T, stats: Arc<LockStats>) -> Self {
        InstrumentedLock {
            inner: Mutex::new(value),
            stats,
            wait_kind: bpw_trace::EventKind::LockWait,
            wait_arg: 1,
        }
    }

    /// Wrap `value`, reporting contended waits as `kind` spans with
    /// `arg` as the event argument (e.g. `MissShardWait` carrying the
    /// shard index) instead of the generic `LockWait`.
    pub fn with_wait_event(
        value: T,
        stats: Arc<LockStats>,
        kind: bpw_trace::EventKind,
        arg: u64,
    ) -> Self {
        InstrumentedLock {
            inner: Mutex::new(value),
            stats,
            wait_kind: kind,
            wait_arg: arg,
        }
    }

    /// The shared statistics sink.
    pub fn stats(&self) -> &Arc<LockStats> {
        &self.stats
    }

    /// The paper's `TryLock()`: a non-blocking attempt. A failure is
    /// cheap and recorded; the caller keeps accumulating accesses.
    pub fn try_lock(&self) -> Option<LockGuard<'_, T>> {
        bpw_dst::yield_point();
        match self.inner.try_lock() {
            Some(guard) => {
                self.stats
                    .record_acquisition(false, std::time::Duration::ZERO);
                Some(LockGuard {
                    guard: Some(guard),
                    stats: &self.stats,
                    acquired_at: Instant::now(),
                    accesses: 0,
                })
            }
            None => {
                self.stats.record_trylock_failure();
                None
            }
        }
    }

    /// The paper's `Lock()`: blocking acquisition. If the lock is not
    /// immediately free this counts as a *contention* — the metric the
    /// paper reports per million accesses.
    pub fn lock(&self) -> LockGuard<'_, T> {
        // Under the dst harness a virtual thread must never block its OS
        // thread while holding the scheduler token: spin on try_lock with
        // a voluntary yield instead, so the holder gets scheduled. This
        // lock is the one lock in the system deliberately held *across*
        // yield points (the whole point is exploring what happens while
        // it is busy).
        if bpw_dst::in_task() {
            let mut contended = false;
            loop {
                if let Some(guard) = self.inner.try_lock() {
                    self.stats
                        .record_acquisition(contended, std::time::Duration::ZERO);
                    return LockGuard {
                        guard: Some(guard),
                        stats: &self.stats,
                        acquired_at: Instant::now(),
                        accesses: 0,
                    };
                }
                contended = true;
                bpw_dst::yield_now();
            }
        }
        if let Some(guard) = self.inner.try_lock() {
            self.stats
                .record_acquisition(false, std::time::Duration::ZERO);
            return LockGuard {
                guard: Some(guard),
                stats: &self.stats,
                acquired_at: Instant::now(),
                accesses: 0,
            };
        }
        let wait_start = Instant::now();
        let guard = self.inner.lock();
        let waited = wait_start.elapsed();
        self.stats.record_acquisition(true, waited);
        bpw_trace::span_backdated(self.wait_kind, waited.as_nanos() as u64, self.wait_arg);
        LockGuard {
            guard: Some(guard),
            stats: &self.stats,
            acquired_at: Instant::now(),
            accesses: 0,
        }
    }

    /// Address of the protected value, for prefetching its header cache
    /// lines before acquiring the lock. The pointer is never dereferenced
    /// by callers — only fed to a hardware prefetch hint.
    pub fn data_addr(&self) -> usize {
        self.inner.data_ptr() as usize
    }
}

impl<'a, T> LockGuard<'a, T> {
    /// Note that this critical section performed bookkeeping for `n`
    /// page accesses (used for per-access lock-cost reporting).
    pub fn cover_accesses(&mut self, n: u64) {
        self.accesses += n;
    }
}

impl<'a, T> std::ops::Deref for LockGuard<'a, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<'a, T> std::ops::DerefMut for LockGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<'a, T> Drop for LockGuard<'a, T> {
    fn drop(&mut self) {
        let held = self.acquired_at.elapsed();
        drop(self.guard.take());
        self.stats.record_release(held, self.accesses);
        bpw_trace::span_backdated(
            bpw_trace::EventKind::LockHold,
            held.as_nanos() as u64,
            self.accesses,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_lock_counts_acquisition() {
        let lock = InstrumentedLock::new(5u32, Arc::new(LockStats::new()));
        {
            let mut g = lock.lock();
            *g += 1;
            g.cover_accesses(3);
        }
        let snap = lock.stats().snapshot();
        assert_eq!(snap.acquisitions, 1);
        assert_eq!(snap.contentions, 0);
        assert_eq!(snap.accesses_covered, 3);
        assert_eq!(*lock.lock(), 6);
    }

    #[test]
    fn trylock_failure_recorded() {
        let lock = InstrumentedLock::new((), Arc::new(LockStats::new()));
        let _held = lock.lock();
        assert!(lock.try_lock().is_none());
        let snap = lock.stats().snapshot();
        assert_eq!(snap.trylock_failures, 1);
        assert_eq!(snap.acquisitions, 1);
    }

    #[test]
    fn contention_detected_across_threads() {
        // Provoking a *blocking* acquisition needs the holder to keep
        // the lock until this thread has reached lock() — a moment that
        // is unobservable from outside. Instead of one fixed sleep
        // (flaky on a loaded CI machine), retry the scenario with an
        // escalating, deadline-bounded hold until contention lands.
        let mut hold = std::time::Duration::from_millis(2);
        for _ in 0..6 {
            let lock = Arc::new(InstrumentedLock::new(0u64, Arc::new(LockStats::new())));
            let l2 = Arc::clone(&lock);
            let (tx, rx) = std::sync::mpsc::channel();
            let holder = std::thread::spawn(move || {
                let _g = l2.lock();
                tx.send(()).unwrap();
                std::thread::sleep(hold);
            });
            rx.recv().unwrap();
            {
                let _g = lock.lock(); // blocks iff the holder still holds
            }
            holder.join().unwrap();
            let snap = lock.stats().snapshot();
            assert_eq!(snap.acquisitions, 2);
            if snap.contentions == 1 {
                assert!(snap.wait_ns > 0);
                assert!(snap.hold_ns > 0);
                return;
            }
            assert_eq!(snap.contentions, 0);
            hold *= 4; // 2ms, 8ms, 32ms, ... ~2s worst case
        }
        panic!("could not provoke a blocking acquisition with holds up to ~2s");
    }

    #[test]
    fn data_addr_is_stable() {
        let lock = InstrumentedLock::new(1u8, Arc::new(LockStats::new()));
        let a = lock.data_addr();
        let _g = lock.lock();
        assert_eq!(a, lock.data_addr());
        assert_ne!(a, 0);
    }
}
