//! The prefetching technique (paper §III-B): before requesting the lock,
//! read the data the critical section will touch so the cache misses land
//! *outside* the lock-holding period ("lock warm-up cost").
//!
//! The paper prefetches (a) the fields of the lock data structure and
//! (b) the forward/backward pointers of the accessed pages' list nodes.
//! We issue hardware prefetch hints (`prefetcht0` on x86-64) to the same
//! addresses: the lock word + policy header, and each queued access's
//! node in the policy's stable metadata arena.
//!
//! A prefetch hint never architecturally reads the value, so issuing it
//! on memory that another thread is concurrently writing is safe — the
//! coherence protocol invalidates or updates the line, exactly the
//! behaviour the paper relies on ("some hardware mechanism built in
//! processors will automatically invalidate them ... to keep data
//! coherent").

use bpw_replacement::NodeRegion;

use crate::queue::AccessEntry;

/// Typical cache line size; prefetches are issued per line.
pub const CACHE_LINE: usize = 64;

/// Issue a prefetch hint for the cache line containing `addr`.
#[inline]
pub fn prefetch_line(addr: usize) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(addr as *const i8, _MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = addr; // no portable stable intrinsic; hint dropped
    }
}

/// Issue prefetch hints covering `len` bytes starting at `addr`.
#[inline]
pub fn prefetch_span(addr: usize, len: usize) {
    let mut line = addr & !(CACHE_LINE - 1);
    let end = addr + len.max(1);
    while line < end {
        prefetch_line(line);
        line += CACHE_LINE;
    }
}

/// Precomputed prefetch targets for one wrapped policy.
#[derive(Debug, Clone, Copy)]
pub struct Prefetcher {
    /// Address of the policy struct behind the lock (header: list heads,
    /// counters) — and, with `parking_lot`, adjacent to the lock word.
    policy_addr: usize,
    /// Bytes of policy header to warm.
    header_len: usize,
    /// Per-frame metadata region, if the policy exposes one.
    region: Option<NodeRegion>,
}

impl Prefetcher {
    /// Build a prefetcher for a policy living at `policy_addr` with
    /// an optional per-frame [`NodeRegion`].
    pub fn new(policy_addr: usize, header_len: usize, region: Option<NodeRegion>) -> Self {
        Prefetcher {
            policy_addr,
            header_len,
            region,
        }
    }

    /// A prefetcher that does nothing (prefetching disabled).
    pub fn disabled() -> Self {
        Prefetcher {
            policy_addr: 0,
            header_len: 0,
            region: None,
        }
    }

    /// Warm the cache for a commit of `entries`: the lock/policy header
    /// plus each entry's node metadata.
    #[inline]
    pub fn prefetch_for_commit(&self, entries: &[AccessEntry]) {
        if self.policy_addr != 0 {
            prefetch_span(self.policy_addr, self.header_len);
        }
        if let Some(region) = self.region {
            for e in entries {
                if let Some(addr) = region.addr_of(e.frame) {
                    prefetch_line(addr);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_side_effect_free() {
        // Prefetching arbitrary valid addresses must not crash or alter data.
        let data = vec![7u8; 4096];
        let addr = data.as_ptr() as usize;
        prefetch_line(addr);
        prefetch_span(addr, 4096);
        assert!(data.iter().all(|&b| b == 7));
    }

    #[test]
    fn prefetcher_covers_entries() {
        let nodes = vec![0u64; 128];
        let region = NodeRegion {
            base: nodes.as_ptr() as usize,
            stride: std::mem::size_of::<u64>(),
            count: nodes.len(),
        };
        let header = vec![0u8; 256];
        let p = Prefetcher::new(header.as_ptr() as usize, 256, Some(region));
        let entries = [
            AccessEntry { page: 1, frame: 0 },
            AccessEntry {
                page: 2,
                frame: 127,
            },
            AccessEntry {
                page: 3,
                frame: 9999,
            }, // out of range: skipped
        ];
        p.prefetch_for_commit(&entries); // must not fault
    }

    #[test]
    fn disabled_prefetcher_is_noop() {
        let p = Prefetcher::disabled();
        p.prefetch_for_commit(&[AccessEntry { page: 1, frame: 0 }]);
    }

    #[test]
    fn span_rounds_to_lines() {
        // Spanning an unaligned range must cover both end lines.
        let buf = vec![0u8; 300];
        prefetch_span(buf.as_ptr() as usize + 30, 200);
    }
}
