//! # bpw-core — BP-Wrapper
//!
//! A Rust reproduction of **"BP-Wrapper: A System Framework Making Any
//! Replacement Algorithms (Almost) Lock Contention Free"** (Ding, Jiang &
//! Zhang, ICDE 2009).
//!
//! The framework wraps any [`ReplacementPolicy`](bpw_replacement::ReplacementPolicy)
//! with two techniques that remove nearly all lock contention from the
//! buffer-hit path **without modifying the algorithm**:
//!
//! * **Batching** (§III-A): each thread records hits in a private FIFO
//!   queue and commits them in one lock acquisition once a threshold is
//!   reached — via a non-blocking `TryLock`, falling back to a blocking
//!   `Lock` only when the queue is full.
//! * **Prefetching** (§III-B): immediately before requesting the lock,
//!   the thread issues hardware prefetch hints for the lock word and the
//!   list nodes the critical section will touch, moving cache-miss
//!   stalls out of the lock-holding period.
//!
//! ## Quick example
//!
//! ```
//! use bpw_core::{BpWrapper, WrapperConfig};
//! use bpw_replacement::{Lirs, ReplacementPolicy};
//!
//! // Wrap an unmodified LIRS instance; S = 64, T = 32, both techniques on.
//! let wrapper = BpWrapper::new(Lirs::new(1024), WrapperConfig::default());
//!
//! // Pre-warm: bind pages 0..1024 to frames 0..1024.
//! wrapper.with_locked(|policy| {
//!     for i in 0..1024u64 {
//!         policy.record_miss(i, Some(i as u32), &mut |_| true);
//!     }
//! });
//!
//! // Worker threads get private handles; hits almost never lock.
//! std::thread::scope(|s| {
//!     for _ in 0..4 {
//!         let wrapper = &wrapper;
//!         s.spawn(move || {
//!             let mut handle = wrapper.handle();
//!             for i in 0..100_000u64 {
//!                 let page = i % 1024;
//!                 handle.record_hit(page, page as u32);
//!             }
//!         });
//!     }
//! });
//! println!("contentions/M: {:.1}", wrapper.contentions_per_million());
//! ```

pub mod adaptive;
pub mod baselines;
pub mod combining;
pub mod config;
pub mod lock;
pub mod pad;
pub mod prefetch;
pub mod queue;
pub mod shared_queue;
pub mod wrapped_cache;
pub mod wrapper;

pub use adaptive::{AdaptiveConfig, AdaptiveHandle};
pub use baselines::{ClockHitPath, PartitionedCache};
pub use combining::{PublicationBoard, SlotId, TakenBatch};
pub use config::{Combining, WrapperConfig};
pub use lock::{InstrumentedLock, LockGuard};
pub use pad::CachePadded;
pub use prefetch::{prefetch_line, prefetch_span, Prefetcher};
pub use queue::{AccessEntry, AccessQueue};
pub use shared_queue::SharedQueueWrapper;
pub use wrapped_cache::WrappedCache;
pub use wrapper::{
    AccessHandle, ArcAccessHandle, BpWrapper, CombiningSnapshot, WrapperCounters,
    MAX_COMBINE_PASSES,
};

/// The five systems of the paper's Table I, as wrapper configurations
/// plus the clock baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// `pgClock`: stock PostgreSQL 8.2.3 — CLOCK, lock-free hit path.
    Clock,
    /// `pgQ`: an advanced policy with one lock acquisition per access.
    LockPerAccess,
    /// `pgBat`: batching only.
    Batching,
    /// `pgPre`: prefetching only.
    Prefetching,
    /// `pgBatPre`: batching and prefetching (full BP-Wrapper).
    BatchingPrefetching,
}

impl SystemKind {
    /// All five systems in the paper's presentation order.
    pub const ALL: [SystemKind; 5] = [
        SystemKind::Clock,
        SystemKind::LockPerAccess,
        SystemKind::Batching,
        SystemKind::Prefetching,
        SystemKind::BatchingPrefetching,
    ];

    /// The paper's system name.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::Clock => "pgClock",
            SystemKind::LockPerAccess => "pgQ",
            SystemKind::Batching => "pgBat",
            SystemKind::Prefetching => "pgPre",
            SystemKind::BatchingPrefetching => "pgBatPre",
        }
    }

    /// Wrapper configuration for this system (`None` for `pgClock`,
    /// which bypasses the wrapper entirely).
    pub fn wrapper_config(&self) -> Option<WrapperConfig> {
        match self {
            SystemKind::Clock => None,
            SystemKind::LockPerAccess => Some(WrapperConfig::lock_per_access()),
            SystemKind::Batching => Some(WrapperConfig::batching_only()),
            SystemKind::Prefetching => Some(WrapperConfig::prefetching_only()),
            SystemKind::BatchingPrefetching => Some(WrapperConfig::batching_and_prefetching()),
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_kinds_cover_table_one() {
        assert_eq!(SystemKind::ALL.len(), 5);
        assert_eq!(SystemKind::Clock.name(), "pgClock");
        assert!(SystemKind::Clock.wrapper_config().is_none());
        let full = SystemKind::BatchingPrefetching.wrapper_config().unwrap();
        assert!(full.batching && full.prefetching);
        let bat = SystemKind::Batching.wrapper_config().unwrap();
        assert!(bat.batching && !bat.prefetching);
        let pre = SystemKind::Prefetching.wrapper_config().unwrap();
        assert!(!pre.batching && pre.prefetching);
        let lpa = SystemKind::LockPerAccess.wrapper_config().unwrap();
        assert!(!lpa.batching && !lpa.prefetching);
        for k in SystemKind::ALL {
            if let Some(c) = k.wrapper_config() {
                c.validate();
            }
        }
    }
}
