//! Publication slots for combining commit.
//!
//! When a thread's private queue fills while the replacement lock is
//! busy, the paper's pseudo-code blocks in `Lock()`. Combining commit
//! (opt-in via [`WrapperConfig::combining`](crate::WrapperConfig))
//! instead lets the thread *publish* its batch to a per-handle slot and
//! return immediately; whichever thread next holds the lock drains the
//! published batches in the same critical section. This is the
//! flat-combining idea applied to BP-Wrapper's overflow path: one lock
//! acquisition retires many threads' batches.
//!
//! Order contract (paper §III-A): entries inside one published batch
//! stay in FIFO order, and a thread never commits newer accesses while
//! an older batch of its own is still published — the wrapper reclaims
//! the pending batch and applies it first. Batches from *different*
//! threads carry no mutual order, exactly like independently racing
//! `Lock()` calls.

use std::ptr;
use std::sync::atomic::Ordering;

// The slot array and the registration list go through the dst shims:
// under the harness every pointer swap/CAS on a slot — publish, owner
// reclaim, combiner drain — is a schedule point, so the races between
// them are explorable. In normal builds these are the bare primitives.
use bpw_dst::shim::{AtomicPtr, Mutex};

use crate::queue::AccessEntry;

/// Index of a handle's publication slot within a [`PublicationBoard`].
pub type SlotId = usize;

/// A fixed array of single-batch publication slots, one per registered
/// access handle. Each slot is an `AtomicPtr` to a heap-allocated batch;
/// null means empty. Publishing and draining are lock-free pointer
/// swaps; only slot registration (handle creation/teardown, cold path)
/// takes a mutex.
pub struct PublicationBoard {
    slots: Vec<AtomicPtr<Vec<AccessEntry>>>,
    free: Mutex<Vec<SlotId>>,
}

impl std::fmt::Debug for PublicationBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PublicationBoard")
            .field("slots", &self.slots.len())
            .finish()
    }
}

impl PublicationBoard {
    /// A board with `slots` publication slots. Handles beyond the slot
    /// count simply fall back to blocking commits.
    pub fn new(slots: usize) -> Self {
        PublicationBoard {
            slots: (0..slots)
                .map(|_| AtomicPtr::new(ptr::null_mut()))
                .collect(),
            free: Mutex::new((0..slots).rev().collect()),
        }
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Claim a slot for a new handle, if any remain.
    pub fn register(&self) -> Option<SlotId> {
        self.free.lock().pop()
    }

    /// Return a slot after its handle is done. The caller must have
    /// reclaimed any pending batch first; a still-published batch would
    /// otherwise be attributed to the slot's next owner.
    pub fn release(&self, slot: SlotId) {
        debug_assert!(
            self.slots[slot].load(Ordering::Acquire).is_null(),
            "slot released with a batch still published"
        );
        self.free.lock().push(slot);
    }

    /// Publish `batch` to `slot`. Fails (returning the batch) if the
    /// slot still holds an undrained earlier batch — the caller must
    /// then take the blocking path, applying old before new to keep its
    /// intra-thread order.
    pub fn publish(&self, slot: SlotId, batch: Vec<AccessEntry>) -> Result<(), Vec<AccessEntry>> {
        let ptr = Box::into_raw(Box::new(batch));
        match self.slots[slot].compare_exchange(
            ptr::null_mut(),
            ptr,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Ok(()),
            Err(_) => Err(*unsafe { Box::from_raw(ptr) }),
        }
    }

    /// Does `slot` currently hold an undrained batch? Advisory only —
    /// a combiner may drain it between this check and any follow-up.
    /// (For a slot's *owner* the answer can only flip published→empty,
    /// which is what flush uses it for.)
    pub fn is_published(&self, slot: SlotId) -> bool {
        !self.slots[slot].load(Ordering::Acquire).is_null()
    }

    /// Take back whatever `slot` holds (the owner reclaiming its own
    /// pending batch, or a combiner claiming one slot).
    pub fn take(&self, slot: SlotId) -> Option<Vec<AccessEntry>> {
        let p = self.slots[slot].swap(ptr::null_mut(), Ordering::AcqRel);
        if p.is_null() {
            None
        } else {
            Some(*unsafe { Box::from_raw(p) })
        }
    }

    /// Drain every published batch (a lock holder combining). `skip`
    /// names the caller's own slot, which it reclaims separately to
    /// keep its own ordering.
    pub fn drain(&self, skip: Option<SlotId>) -> Vec<Vec<AccessEntry>> {
        let mut out = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            if Some(i) == skip {
                continue;
            }
            // Cheap null check before the expensive swap: most slots
            // are empty most of the time.
            if slot.load(Ordering::Acquire).is_null() {
                continue;
            }
            let p = slot.swap(ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                out.push(*unsafe { Box::from_raw(p) });
            }
        }
        out
    }
}

impl Drop for PublicationBoard {
    fn drop(&mut self) {
        for slot in &self.slots {
            let p = slot.swap(ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(page: u64) -> AccessEntry {
        AccessEntry {
            page,
            frame: page as u32,
        }
    }

    #[test]
    fn publish_take_roundtrip() {
        let board = PublicationBoard::new(4);
        let slot = board.register().unwrap();
        board.publish(slot, vec![entry(1), entry(2)]).unwrap();
        let got = board.take(slot).unwrap();
        assert_eq!(got.iter().map(|e| e.page).collect::<Vec<_>>(), vec![1, 2]);
        assert!(board.take(slot).is_none());
        board.release(slot);
    }

    #[test]
    fn double_publish_rejected_with_batch_returned() {
        let board = PublicationBoard::new(2);
        let slot = board.register().unwrap();
        board.publish(slot, vec![entry(1)]).unwrap();
        let rejected = board.publish(slot, vec![entry(2)]).unwrap_err();
        assert_eq!(rejected[0].page, 2);
        assert_eq!(board.take(slot).unwrap()[0].page, 1);
        board.release(slot);
    }

    #[test]
    fn drain_skips_own_slot() {
        let board = PublicationBoard::new(4);
        let mine = board.register().unwrap();
        let theirs = board.register().unwrap();
        board.publish(mine, vec![entry(10)]).unwrap();
        board.publish(theirs, vec![entry(20)]).unwrap();
        let drained = board.drain(Some(mine));
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0][0].page, 20);
        assert_eq!(board.take(mine).unwrap()[0].page, 10);
    }

    #[test]
    fn registration_exhausts_and_recycles() {
        let board = PublicationBoard::new(2);
        let a = board.register().unwrap();
        let _b = board.register().unwrap();
        assert!(board.register().is_none());
        board.release(a);
        assert!(board.register().is_some());
    }

    #[test]
    fn dropping_board_frees_published_batches() {
        let board = PublicationBoard::new(1);
        let slot = board.register().unwrap();
        board.publish(slot, vec![entry(7); 128]).unwrap();
        drop(board); // must not leak (checked under miri/asan if available)
    }

    #[test]
    fn concurrent_publishers_and_one_drainer() {
        let board = std::sync::Arc::new(PublicationBoard::new(8));
        let total: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let board = std::sync::Arc::clone(&board);
                    s.spawn(move || {
                        let slot = board.register().unwrap();
                        let mut kept = 0usize;
                        for round in 0..100u64 {
                            let batch = vec![entry(round); 4];
                            if let Err(back) = board.publish(slot, batch) {
                                kept += back.len();
                            }
                        }
                        if let Some(batch) = board.take(slot) {
                            kept += batch.len();
                        }
                        board.release(slot);
                        kept
                    })
                })
                .collect();
            let drainer = {
                let board = std::sync::Arc::clone(&board);
                s.spawn(move || {
                    let mut seen = 0usize;
                    for _ in 0..2000 {
                        for batch in board.drain(None) {
                            seen += batch.len();
                        }
                        std::thread::yield_now();
                    }
                    seen
                })
            };
            let direct: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            direct + drainer.join().unwrap()
        });
        // Every published or rejected entry is accounted exactly once:
        // 4 threads x 100 rounds x 4 entries.
        let leftover: usize = board.drain(None).iter().map(|b| b.len()).sum();
        assert_eq!(total + leftover, 4 * 100 * 4);
    }
}
