//! Publication slots for the flat-combining commit path.
//!
//! When a thread crosses its batch threshold while the replacement lock
//! is busy, the paper's pseudo-code either keeps accumulating or blocks
//! in `Lock()`. Combining commit (opt-in via
//! [`WrapperConfig::combining`](crate::WrapperConfig)) instead lets the
//! thread *publish* its batch to a per-handle slot and return
//! immediately; whichever thread holds the lock drains every pending
//! slot in the same critical section. One lock acquisition retires many
//! threads' batches — flat combining applied to BP-Wrapper's commit.
//!
//! Order contract (paper §III-A): entries inside one published batch
//! stay in FIFO order, and a thread never commits newer accesses while
//! an older batch of its own is still published — the wrapper reclaims
//! the pending batch and applies it first. Batches from *different*
//! threads carry no mutual order, exactly like independently racing
//! `Lock()` calls.
//!
//! ## Buffer recycling
//!
//! Publishing must not allocate: it sits on the hit fast path. Each
//! slot owns **two** preallocated batch buffers (`Vec<AccessEntry>`
//! with the queue's capacity reserved) parked in a two-cell *rack*. A
//! publish pops a buffer from the rack, swaps the queue's backing
//! storage into it (an O(1) `Vec` internals exchange), and CASes the
//! buffer pointer into the slot's `published` cell. A consumer — the
//! owner reclaiming, or a lock holder combining — swaps `published`
//! back to null, applies the entries, clears the buffer, and returns it
//! to the rack. Two buffers suffice: at most one can be published and
//! at most one held by a consumer at any instant (consumers are
//! serialized by the replacement lock), so a rack push always finds a
//! free cell and a publish that sees `published == null` always finds a
//! buffer.
//!
//! Every slot is [`CachePadded`] so one thread's publish CAS does not
//! bounce the cache line under its neighbours' — with 64 dense
//! `AtomicPtr` slots, eight would share each line.

use std::ptr;
use std::sync::atomic::Ordering;

// The slot cells and the registration list go through the dst shims:
// under the harness every pointer swap/CAS on a slot — publish, owner
// reclaim, combiner drain, rack exchange — is a schedule point, so the
// races between them are explorable. In normal builds these are the
// bare primitives.
use bpw_dst::shim::{AtomicPtr, AtomicUsize, Mutex};

use crate::pad::CachePadded;
use crate::queue::AccessEntry;

/// Index of a handle's publication slot within a [`PublicationBoard`].
pub type SlotId = usize;

/// One handle's publication slot: the published-batch cell plus the
/// two-cell rack of idle buffers. All three cells hold owned pointers
/// to heap `Vec`s created at board construction; null means empty.
struct Slot {
    published: AtomicPtr<Vec<AccessEntry>>,
    rack: [AtomicPtr<Vec<AccessEntry>>; 2],
}

impl Slot {
    fn with_buffers(capacity: usize) -> Self {
        let buf = || Box::into_raw(Box::new(Vec::with_capacity(capacity)));
        Slot {
            published: AtomicPtr::new(ptr::null_mut()),
            rack: [AtomicPtr::new(buf()), AtomicPtr::new(buf())],
        }
    }

    /// Take an idle buffer out of the rack, if one is parked.
    fn pop_rack(&self) -> Option<*mut Vec<AccessEntry>> {
        for cell in &self.rack {
            let p = cell.swap(ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                return Some(p);
            }
        }
        None
    }

    /// Park an idle buffer. By the two-buffer invariant a cell is
    /// always free; if that is ever violated the buffer is dropped
    /// (degrading recycling, never correctness) in release builds.
    fn push_rack(&self, buf: *mut Vec<AccessEntry>) {
        for cell in &self.rack {
            if cell
                .compare_exchange(ptr::null_mut(), buf, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
        debug_assert!(false, "publication rack overflow: more than two buffers");
        drop(unsafe { Box::from_raw(buf) });
    }
}

/// A published batch taken out of a slot by a consumer. Dereferences to
/// the entries; on drop the buffer is cleared and returned to its
/// slot's rack, completing the recycling cycle without an allocation.
pub struct TakenBatch<'a> {
    slot: &'a Slot,
    buf: *mut Vec<AccessEntry>,
}

impl std::ops::Deref for TakenBatch<'_> {
    type Target = [AccessEntry];

    fn deref(&self) -> &[AccessEntry] {
        // SAFETY: `buf` was swapped out of the `published` cell, so this
        // TakenBatch is its unique owner until dropped.
        unsafe { &*self.buf }
    }
}

impl Drop for TakenBatch<'_> {
    fn drop(&mut self) {
        // SAFETY: unique owner (see Deref). Clearing keeps the buffer's
        // reserved capacity, so the next publish into it stays
        // allocation-free.
        unsafe { (*self.buf).clear() };
        self.slot.push_rack(self.buf);
    }
}

impl std::fmt::Debug for TakenBatch<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TakenBatch")
            .field("len", &self.len())
            .finish()
    }
}

/// A fixed array of single-batch publication slots, one per registered
/// access handle. Publishing and draining are lock-free pointer swaps;
/// only slot registration (handle creation/teardown, cold path) takes a
/// mutex.
pub struct PublicationBoard {
    slots: Vec<CachePadded<Slot>>,
    free: Mutex<Vec<SlotId>>,
    batch_capacity: usize,
    /// Upper bound on currently published slots, maintained so lock
    /// holders can skip the 64-slot drain scan when nothing is pending
    /// (the overwhelmingly common case on an uncontended commit).
    /// Incremented *before* the publish CAS and decremented after a
    /// successful take, so it never under-counts a visible batch; a
    /// transient over-count only costs one wasted scan.
    pending: CachePadded<AtomicUsize>,
}

impl std::fmt::Debug for PublicationBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PublicationBoard")
            .field("slots", &self.slots.len())
            .field("batch_capacity", &self.batch_capacity)
            .finish()
    }
}

impl PublicationBoard {
    /// A board with `slots` publication slots whose recycled buffers
    /// each reserve `batch_capacity` entries (the wrapper passes its
    /// queue size `S`, the largest batch a handle can publish). Handles
    /// beyond the slot count simply fall back to blocking commits.
    pub fn new(slots: usize, batch_capacity: usize) -> Self {
        PublicationBoard {
            slots: (0..slots)
                .map(|_| CachePadded::new(Slot::with_buffers(batch_capacity)))
                .collect(),
            free: Mutex::new((0..slots).rev().collect()),
            batch_capacity,
            pending: CachePadded::new(AtomicUsize::default()),
        }
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Entries each recycled batch buffer has reserved.
    pub fn batch_capacity(&self) -> usize {
        self.batch_capacity
    }

    /// Claim a slot for a new handle, if any remain.
    pub fn register(&self) -> Option<SlotId> {
        self.free.lock().pop()
    }

    /// Return a slot after its handle is done, reclaiming any batch
    /// still published there. The caller receives the orphaned entries
    /// (if any) and must commit them itself — silently recycling the
    /// slot would attribute the batch to its next owner, violating the
    /// §III-A per-thread order contract.
    pub fn release(&self, slot: SlotId) -> Option<Vec<AccessEntry>> {
        let pending = self.take(slot).map(|batch| batch.to_vec());
        self.free.lock().push(slot);
        pending
    }

    /// Publish the queue storage behind `batch` to `slot`, leaving
    /// equally-large empty storage in its place. Fails — without
    /// touching `batch` — when the slot still holds an undrained
    /// earlier batch (publishing over it would reorder one thread's
    /// accesses) or, transiently, when both buffers are in flight.
    pub fn publish(&self, slot: SlotId, batch: &mut Vec<AccessEntry>) -> bool {
        let slot = &*self.slots[slot];
        // Owner-only cell: nobody else publishes to this slot, so a
        // non-null observation is stable until we reclaim it ourselves.
        if !slot.published.load(Ordering::Acquire).is_null() {
            return false;
        }
        let Some(buf) = slot.pop_rack() else {
            return false;
        };
        // SAFETY: popped from the rack, so `buf` is exclusively ours.
        // The swap trades the queue's full storage for the buffer's
        // empty (equal-capacity) storage — no copy, no allocation.
        unsafe { std::ptr::swap(buf, batch) };
        self.pending.fetch_add(1, Ordering::Release);
        match slot.published.compare_exchange(
            ptr::null_mut(),
            buf,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => true,
            Err(_) => {
                // Unreachable for a well-behaved owner (checked null
                // above and only the owner publishes); undo the swap so
                // the caller keeps its batch either way.
                self.pending.fetch_sub(1, Ordering::Release);
                unsafe { std::ptr::swap(buf, batch) };
                slot.push_rack(buf);
                false
            }
        }
    }

    /// Does `slot` currently hold an undrained batch? Advisory only —
    /// a combiner may drain it between this check and any follow-up.
    /// (For a slot's *owner* the answer can only flip published→empty,
    /// which is what flush uses it for.)
    pub fn is_published(&self, slot: SlotId) -> bool {
        !self.slots[slot].published.load(Ordering::Acquire).is_null()
    }

    /// Take back whatever `slot` holds (the owner reclaiming its own
    /// pending batch, or a combiner claiming one slot). Dropping the
    /// returned batch recycles its buffer into the slot's rack.
    pub fn take(&self, slot: SlotId) -> Option<TakenBatch<'_>> {
        let slot = &*self.slots[slot];
        let p = slot.published.swap(ptr::null_mut(), Ordering::AcqRel);
        if p.is_null() {
            None
        } else {
            self.pending.fetch_sub(1, Ordering::Release);
            Some(TakenBatch { slot, buf: p })
        }
    }

    /// One combining pass: visit every slot except `skip` (the caller's
    /// own, reclaimed separately to keep its own ordering), feed each
    /// published batch to `apply`, and recycle its buffer. Returns the
    /// number of batches drained. The caller loops for multi-pass
    /// combining and enforces the fairness bound.
    pub fn drain_pass(&self, skip: Option<SlotId>, mut apply: impl FnMut(&[AccessEntry])) -> usize {
        if self.pending.load(Ordering::Acquire) == 0 {
            // Nothing published anywhere: skip the per-slot scan (it
            // touches one cache line per slot, which would tax every
            // uncontended commit).
            return 0;
        }
        let mut drained = 0;
        for (i, slot) in self.slots.iter().enumerate() {
            if Some(i) == skip {
                continue;
            }
            // Cheap null check before the expensive swap: most slots
            // are empty most of the time.
            if slot.published.load(Ordering::Acquire).is_null() {
                continue;
            }
            if let Some(batch) = self.take(i) {
                apply(&batch);
                drained += 1;
            }
        }
        drained
    }
}

impl Drop for PublicationBoard {
    fn drop(&mut self) {
        for slot in &self.slots {
            for cell in std::iter::once(&slot.published).chain(slot.rack.iter()) {
                let p = cell.swap(ptr::null_mut(), Ordering::AcqRel);
                if !p.is_null() {
                    drop(unsafe { Box::from_raw(p) });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(page: u64) -> AccessEntry {
        AccessEntry {
            page,
            frame: page as u32,
        }
    }

    fn batch(pages: &[u64]) -> Vec<AccessEntry> {
        let mut v = Vec::with_capacity(8.max(pages.len()));
        v.extend(pages.iter().map(|&p| entry(p)));
        v
    }

    #[test]
    fn publish_take_roundtrip() {
        let board = PublicationBoard::new(4, 8);
        let slot = board.register().unwrap();
        let mut b = batch(&[1, 2]);
        assert!(board.publish(slot, &mut b));
        assert!(b.is_empty(), "publish must leave empty storage behind");
        assert!(b.capacity() >= 8, "returned storage must keep capacity");
        let got = board.take(slot).unwrap();
        assert_eq!(got.iter().map(|e| e.page).collect::<Vec<_>>(), vec![1, 2]);
        drop(got);
        assert!(board.take(slot).is_none());
        assert_eq!(board.release(slot), None);
    }

    #[test]
    fn double_publish_rejected_with_batch_untouched() {
        let board = PublicationBoard::new(2, 8);
        let slot = board.register().unwrap();
        let mut first = batch(&[1]);
        assert!(board.publish(slot, &mut first));
        let mut second = batch(&[2]);
        assert!(!board.publish(slot, &mut second));
        assert_eq!(second[0].page, 2, "rejected batch must be left in place");
        assert_eq!(board.take(slot).unwrap()[0].page, 1);
        board.release(slot);
    }

    #[test]
    fn publish_reuses_the_two_slot_buffers() {
        // Round-tripping publish/take many times must cycle the same two
        // preallocated buffers (observable: storage pointers repeat).
        let board = PublicationBoard::new(1, 8);
        let slot = board.register().unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut b = batch(&[9]);
        for round in 0..6u64 {
            b.push(entry(round));
            assert!(board.publish(slot, &mut b));
            seen.insert(board.take(slot).unwrap().as_ptr() as usize);
        }
        assert!(
            seen.len() <= 2,
            "publish allocated fresh buffers instead of recycling ({} distinct)",
            seen.len()
        );
    }

    #[test]
    fn drain_pass_skips_own_slot() {
        let board = PublicationBoard::new(4, 8);
        let mine = board.register().unwrap();
        let theirs = board.register().unwrap();
        assert!(board.publish(mine, &mut batch(&[10])));
        assert!(board.publish(theirs, &mut batch(&[20])));
        let mut pages = Vec::new();
        let drained = board.drain_pass(Some(mine), |b| pages.extend(b.iter().map(|e| e.page)));
        assert_eq!(drained, 1);
        assert_eq!(pages, vec![20]);
        assert_eq!(board.take(mine).unwrap()[0].page, 10);
    }

    #[test]
    fn registration_exhausts_and_recycles() {
        let board = PublicationBoard::new(2, 4);
        let a = board.register().unwrap();
        let _b = board.register().unwrap();
        assert!(board.register().is_none());
        board.release(a);
        assert!(board.register().is_some());
    }

    #[test]
    fn release_returns_the_pending_batch() {
        // The release-hole regression (ISSUE 8 satellite): a handle torn
        // down with a batch still published must get the batch back so
        // the caller can commit it, and the next owner of the slot must
        // see it empty. The old code only debug_assert'ed, so release
        // builds silently handed the batch to the next owner.
        let board = PublicationBoard::new(1, 8);
        let slot = board.register().unwrap();
        assert!(board.publish(slot, &mut batch(&[41, 42])));
        let orphan = board.release(slot).expect("pending batch must be returned");
        assert_eq!(
            orphan.iter().map(|e| e.page).collect::<Vec<_>>(),
            vec![41, 42]
        );
        let next = board.register().unwrap();
        assert_eq!(next, slot, "slot must be recycled");
        assert!(
            board.take(next).is_none(),
            "next owner must see an empty slot"
        );
        assert!(
            board.publish(next, &mut batch(&[7])),
            "recycled slot must still have its buffers"
        );
        board.release(next);
    }

    #[test]
    fn dropping_board_frees_published_batches() {
        let board = PublicationBoard::new(1, 128);
        let slot = board.register().unwrap();
        assert!(board.publish(slot, &mut batch(&[7; 128])));
        drop(board); // must not leak (checked under miri/asan if available)
    }

    #[test]
    fn concurrent_publishers_and_one_drainer() {
        let board = std::sync::Arc::new(PublicationBoard::new(8, 4));
        let total: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let board = std::sync::Arc::clone(&board);
                    s.spawn(move || {
                        let slot = board.register().unwrap();
                        let mut kept = 0usize;
                        let mut b = Vec::with_capacity(4);
                        for round in 0..100u64 {
                            b.extend_from_slice(&[entry(round); 4]);
                            if !board.publish(slot, &mut b) {
                                kept += b.len();
                                b.clear();
                            }
                        }
                        if let Some(batch) = board.take(slot) {
                            kept += batch.len();
                        }
                        assert_eq!(board.release(slot), None);
                        kept
                    })
                })
                .collect();
            let drainer = {
                let board = std::sync::Arc::clone(&board);
                s.spawn(move || {
                    let mut seen = 0usize;
                    for _ in 0..2000 {
                        board.drain_pass(None, |b| seen += b.len());
                        std::thread::yield_now();
                    }
                    seen
                })
            };
            let direct: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            direct + drainer.join().unwrap()
        });
        // Every published or rejected entry is accounted exactly once:
        // 4 threads x 100 rounds x 4 entries.
        let mut leftover = 0usize;
        board.drain_pass(None, |b| leftover += b.len());
        assert_eq!(total + leftover, 4 * 100 * 4);
    }
}
