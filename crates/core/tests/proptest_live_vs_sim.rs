//! Property tests backing the advisor's shadow caches: the shadow
//! [`CacheSim`] replay of a reference string must be *behaviorally
//! identical* to the live policy driven through `BpWrapper` with
//! combining off — not just the same hit/miss verdicts, but the same
//! **eviction sequence**, page for page, in order. This is what makes
//! the advisor's shadow scores a faithful proxy for what a candidate
//! policy would do if hot-swapped in.

use bpw_core::{Combining, WrappedCache, WrapperConfig};
use bpw_replacement::{CacheSim, PolicyKind};
use proptest::prelude::*;

fn any_policy() -> impl Strategy<Value = PolicyKind> {
    prop::sample::select(PolicyKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every policy, arbitrary traces, and arbitrary batching
    /// parameters, the shadow simulation and the wrapped live policy
    /// evict exactly the same victims in exactly the same order.
    #[test]
    fn shadow_replay_matches_live_eviction_sequence(
        kind in any_policy(),
        frames in 2usize..16,
        queue_size in 1usize..64,
        threshold_frac in 1usize..=100,
        trace in prop::collection::vec(0u64..64, 1..600),
    ) {
        let threshold = ((queue_size * threshold_frac) / 100).clamp(1, queue_size);
        let cfg = WrapperConfig {
            queue_size,
            batch_threshold: threshold,
            batching: true,
            prefetching: false,
            combining: Combining::Off,
        };
        let mut shadow = CacheSim::new(kind.build(frames)).with_eviction_log();
        let mut live = WrappedCache::new(kind.build(frames), cfg).with_eviction_log();
        for &p in &trace {
            let a = shadow.access(p);
            let b = live.access(p);
            prop_assert_eq!(a, b, "{} hit/miss diverged on page {}", kind, p);
        }
        prop_assert_eq!(
            shadow.eviction_log(),
            live.eviction_log(),
            "{} eviction sequences diverged", kind
        );
        prop_assert_eq!(shadow.stats(), live.stats());
    }

    /// The same equivalence holds under eviction pressure with repeated
    /// phases (the advisor's bread and butter: scoring phase-change
    /// workloads), using default wrapper parameters.
    #[test]
    fn shadow_replay_matches_live_across_phases(
        kind in any_policy(),
        frames in 2usize..12,
        hot in prop::collection::vec(0u64..8, 1..100),
        scan_len in 1u64..64,
    ) {
        let cfg = WrapperConfig {
            combining: Combining::Off,
            ..WrapperConfig::default()
        };
        let mut shadow = CacheSim::new(kind.build(frames)).with_eviction_log();
        let mut live = WrappedCache::new(kind.build(frames), cfg).with_eviction_log();
        // Phase 1: hot-set reuse. Phase 2: a scan. Phase 3: hot again.
        let trace: Vec<u64> = hot
            .iter()
            .copied()
            .chain((100..100 + scan_len).chain(hot.iter().copied()))
            .collect();
        for &p in &trace {
            prop_assert_eq!(shadow.access(p), live.access(p), "{} diverged", kind);
        }
        prop_assert_eq!(shadow.eviction_log(), live.eviction_log(), "{kind}");
    }
}
