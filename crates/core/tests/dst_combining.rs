//! Deterministic-simulation tests for the wrapper's batched/combining
//! commit path (the paper's §III-A ordering contract), driven by the
//! vendored bpw-dst scheduler.
//!
//! Every test explores many seeded schedules. For each schedule the
//! recorded history must satisfy:
//!
//! * **program order** — each thread's recorded hits commit in its own
//!   FIFO order, exactly once ([`check_commit_order`]);
//! * **serial witness** — replaying the *global* commit order against a
//!   fresh, unwrapped policy reproduces the same placements, victims,
//!   stale skips, and final recency order: the concurrent execution is
//!   equivalent to some serial interleaving of committed batches.
//!
//! Failures print the seed and the full schedule; re-running the same
//! seed replays the identical execution.

#![cfg(feature = "dst")]

use std::sync::Arc;

use bpw_core::{BpWrapper, WrapperConfig, MAX_COMBINE_PASSES};
use bpw_dst::check::{check_combine_fairness, check_commit_order, CommitReport};
use bpw_dst::{Event, Op, RunOutcome, Sim};
use bpw_replacement::{Lru, ReplacementPolicy, SeqLru};

const FRAMES: usize = 12;
const WORKERS: u64 = 3;
const PAGES_PER: u64 = 4;
const ROUNDS: u64 = 3;

/// An Lru wrapper with a tiny queue so publications and reclaims are
/// frequent, pre-warmed so page `i` sits in frame `i`.
fn warmed_wrapper() -> Arc<BpWrapper<Lru>> {
    let w = BpWrapper::new(
        Lru::new(FRAMES),
        WrapperConfig::default()
            .with_queue_size(4)
            .with_batch_threshold(2)
            .with_combining(true),
    );
    w.with_locked(|p| {
        for i in 0..FRAMES as u64 {
            p.record_miss(i, Some(i as u32), &mut |_| true);
        }
    });
    Arc::new(w)
}

/// The serial witness (checker (c)): replay the global commit order into
/// a fresh warmed policy. Every committed access must behave exactly as
/// it did live — same admitted frame, same victim, same stale verdict —
/// and the final state must match `live`'s.
fn replay_serially(history: &[Event], live: &Arc<BpWrapper<Lru>>) {
    let mut p = Lru::new(FRAMES);
    for i in 0..FRAMES as u64 {
        p.record_miss(i, Some(i as u32), &mut |_| true);
    }
    for ev in history {
        match ev.op {
            Op::CommitHit {
                page,
                frame,
                applied,
            } => {
                let resident = p.page_at(frame) == Some(page);
                assert_eq!(
                    resident, applied,
                    "serial replay disagrees on staleness of hit ({page}, frame {frame})"
                );
                if applied {
                    p.record_hit(frame);
                }
            }
            Op::MissApply {
                page,
                free,
                frame,
                victim,
            } => {
                let out = p.record_miss(page, free, &mut |_| true);
                assert_eq!(
                    out.frame(),
                    frame,
                    "serial replay admitted page {page} into a different frame"
                );
                assert_eq!(
                    out.victim(),
                    victim,
                    "serial replay evicted a different victim for page {page}"
                );
            }
            _ => {}
        }
    }
    p.check_invariants();
    let live_order = live.with_locked(|lp| {
        lp.check_invariants();
        lp.eviction_order()
    });
    assert_eq!(
        p.eviction_order(),
        live_order,
        "committed history is not serially equivalent to the live policy state"
    );
}

/// One schedule of the standard storm: one task parks on the policy
/// lock (forcing worker queues to overflow into publication slots)
/// while `WORKERS` tasks record hits — and optionally one miss each —
/// on disjoint page sets.
fn run_storm(seed: u64, pct: bool, with_misses: bool) -> (RunOutcome, Arc<BpWrapper<Lru>>) {
    let w = warmed_wrapper();
    let mut sim = if pct {
        Sim::new(seed).with_pct(3)
    } else {
        Sim::new(seed)
    };
    {
        let w = Arc::clone(&w);
        sim.spawn(move || {
            for _ in 0..4 {
                w.with_locked(|_| {
                    for _ in 0..6 {
                        bpw_dst::yield_now();
                    }
                });
                bpw_dst::yield_now();
            }
        });
    }
    for t in 0..WORKERS {
        let w = Arc::clone(&w);
        sim.spawn(move || {
            let mut h = w.handle_arc();
            for round in 0..ROUNDS {
                for k in 0..PAGES_PER {
                    let page = t * PAGES_PER + k;
                    h.record_hit(page, page as u32);
                }
                if with_misses && round == 1 {
                    // A miss mid-stream: commits this task's queue in
                    // order, then evicts through the policy.
                    h.record_miss(100 + t, None, &mut |_| true);
                }
            }
            // Dropping the handle flushes the queue and any published
            // batch, so no recorded access is lost.
        });
    }
    (sim.run(), w)
}

fn check_storm(out: &RunOutcome, w: &Arc<BpWrapper<Lru>>) -> CommitReport {
    out.expect_clean();
    let mut report = CommitReport::default();
    out.check(|o| {
        report = check_commit_order(&o.history);
        replay_serially(&o.history, w);
    });
    report
}

#[test]
fn dst_combining_commit_preserves_program_order() {
    // Hits only: every recorded access must commit exactly once, in its
    // thread's order, and the global order must be serially realizable.
    let mut publishes = 0;
    let mut reclaims = 0;
    let mut combines = 0;
    for (i, seed) in bpw_dst::seed_corpus(0xC0B1, 48).iter().enumerate() {
        let (out, w) = run_storm(*seed, i % 4 == 3, false);
        let report = check_storm(&out, &w);
        assert_eq!(report.records, WORKERS * PAGES_PER * ROUNDS);
        publishes += report.publishes;
        reclaims += report.reclaims;
        combines += report.combines;
    }
    // The corpus as a whole must exercise the combining machinery —
    // otherwise the reclaim-ordering contract was never under test.
    assert!(
        publishes > 0,
        "no schedule published a batch; corpus vacuous"
    );
    assert!(
        reclaims > 0,
        "no schedule reclaimed a batch; corpus vacuous"
    );
    assert!(combines > 0, "no schedule combined a batch; corpus vacuous");
}

#[test]
fn dst_combining_with_misses_replays_serially() {
    // Hits + evicting misses: stale commits now occur (a queued hit's
    // page can be evicted before its commit); the serial witness must
    // agree on every stale verdict and every victim.
    let mut stale = 0;
    for (i, seed) in bpw_dst::seed_corpus(0xC0B2, 40).iter().enumerate() {
        let (out, w) = run_storm(*seed, i % 4 == 1, true);
        let report = check_storm(&out, &w);
        assert_eq!(report.records, WORKERS * PAGES_PER * ROUNDS);
        stale += report.stale_commits;
    }
    assert!(
        stale > 0,
        "no schedule produced a stale commit; eviction raced nothing"
    );
}

#[test]
fn dst_seq_run_detection_survives_publication() {
    // Port of `combining_preserves_seq_run_detection` under the
    // scheduler: a single thread scans pages 0..8 while another task
    // holds and releases the policy lock at schedule-chosen moments.
    // Whatever the schedule — direct commits, publication + reclaim, or
    // combining by the lock holder — the scan must reach the policy as
    // ONE run, because reclaim-before-commit preserves program order.
    for (i, seed) in bpw_dst::seed_corpus(0x5E9, 40).iter().enumerate() {
        let w = Arc::new(BpWrapper::new(
            SeqLru::new(32),
            WrapperConfig::default()
                .with_queue_size(4)
                .with_batch_threshold(4)
                .with_combining(true),
        ));
        w.with_locked(|p| {
            for i in 0..32u64 {
                p.record_miss(i, Some(i as u32), &mut |_| true);
            }
        });
        let warm_runs = w.with_locked(|p| p.detected_runs());
        let mut sim = if i % 3 == 2 {
            Sim::new(*seed).with_pct(2)
        } else {
            Sim::new(*seed)
        };
        {
            let w = Arc::clone(&w);
            sim.spawn(move || {
                for _ in 0..3 {
                    w.with_locked(|_| {
                        for _ in 0..5 {
                            bpw_dst::yield_now();
                        }
                    });
                    bpw_dst::yield_now();
                }
            });
        }
        {
            let w = Arc::clone(&w);
            sim.spawn(move || {
                let mut h = w.handle_arc();
                for p in 0..8u64 {
                    h.record_hit(p, p as u32);
                }
            });
        }
        let out = sim.run();
        out.expect_clean();
        out.check(|o| {
            check_commit_order(&o.history);
            let runs = w.with_locked(|p| p.detected_runs());
            assert_eq!(
                runs,
                warm_runs + 1,
                "a scan split by publication must still commit as one run"
            );
        });
    }
}

#[test]
fn dst_flat_combiner_respects_fairness_bound() {
    // Flat combining with a hair-trigger threshold (T=1): every hit
    // publishes when the lock is busy, so publishers can feed a
    // combiner *while it drains* — exactly the schedule where an
    // unbounded combiner (the `dst_mutation = "fairness"` mutant) keeps
    // draining pass after pass. The checker asserts no critical section
    // ever exceeds MAX_COMBINE_PASSES.
    // A roomy queue (S=8) keeps publishers accumulating instead of
    // parking on the lock after a failed publish, so they stay alive to
    // republish between a combiner's drain passes. With 4 workers x 24
    // hits the seeded corpus reliably produces schedules where a third
    // non-empty pass is available — the real combiner stops at the
    // bound; the mutant takes it and trips the checker.
    const FC_FRAMES: u64 = 32;
    const FC_WORKERS: u64 = 4;
    const FC_HITS: u64 = 24;
    let mut drains = 0u64;
    let mut multi_batch = 0u64;
    for (i, seed) in bpw_dst::seed_corpus(0xFA17, 48).iter().enumerate() {
        let w = BpWrapper::new(
            Lru::new(FC_FRAMES as usize),
            WrapperConfig::default()
                .with_queue_size(8)
                .with_batch_threshold(1)
                .with_combining(true),
        );
        w.with_locked(|p| {
            for f in 0..FC_FRAMES {
                p.record_miss(f, Some(f as u32), &mut |_| true);
            }
        });
        let w = Arc::new(w);
        let mut sim = if i % 4 == 2 {
            Sim::new(*seed).with_pct(3)
        } else {
            Sim::new(*seed)
        };
        for t in 0..FC_WORKERS {
            let w = Arc::clone(&w);
            sim.spawn(move || {
                let mut h = w.handle_arc();
                for k in 0..FC_HITS {
                    let page = t * PAGES_PER + k % PAGES_PER;
                    h.record_hit(page, page as u32);
                }
            });
        }
        let out = sim.run();
        out.expect_clean();
        out.check(|o| {
            check_commit_order(&o.history);
            let report = check_combine_fairness(&o.history, MAX_COMBINE_PASSES);
            drains += report.drains;
            if report.max_batches > 1 {
                multi_batch += 1;
            }
        });
    }
    assert!(
        drains > 0,
        "no schedule produced a combining drain; fairness bound never under test"
    );
    assert!(
        multi_batch > 0,
        "no schedule drained more than one batch per critical section; \
         the multi-pass path was never exercised"
    );
}

#[test]
fn dst_handle_churn_applies_every_entry_exactly_once() {
    // Register/release churn: each worker tears its handle down and
    // re-registers every round, so slots recycle between tasks while
    // batches are in flight. Exactly-once commit (check_commit_order)
    // must survive the churn — this is the schedule-explored version of
    // the release-hole regression (a batch left in a released slot
    // would be committed under the next owner or lost).
    let mut publishes = 0u64;
    for (i, seed) in bpw_dst::seed_corpus(0xC4C4, 40).iter().enumerate() {
        let w = warmed_wrapper();
        let mut sim = if i % 3 == 1 {
            Sim::new(*seed).with_pct(3)
        } else {
            Sim::new(*seed)
        };
        {
            let w = Arc::clone(&w);
            sim.spawn(move || {
                for _ in 0..3 {
                    w.with_locked(|_| {
                        for _ in 0..5 {
                            bpw_dst::yield_now();
                        }
                    });
                    bpw_dst::yield_now();
                }
            });
        }
        for t in 0..WORKERS {
            let w = Arc::clone(&w);
            sim.spawn(move || {
                for round in 0..ROUNDS {
                    let mut h = w.handle_arc();
                    for k in 0..PAGES_PER {
                        let page = t * PAGES_PER + (round + k) % PAGES_PER;
                        h.record_hit(page, page as u32);
                    }
                    drop(h); // flush + release: the slot recycles mid-run
                }
            });
        }
        let (out, w) = (sim.run(), w);
        out.expect_clean();
        out.check(|o| {
            let report = check_commit_order(&o.history);
            assert_eq!(report.records, WORKERS * PAGES_PER * ROUNDS);
            publishes += report.publishes;
            replay_serially(&o.history, &w);
        });
    }
    assert!(
        publishes > 0,
        "no schedule published through a churned slot; corpus vacuous"
    );
}

#[test]
fn dst_same_seed_replays_identical_schedule_and_history() {
    // The harness's core promise: a seed IS the execution. Two runs of
    // the same seed must agree byte-for-byte on schedule, history, and
    // verdict — this is what makes a printed failing seed replayable.
    for seed in [0xDE7E_12u64, 0xDE7E_13, 0xDE7E_14] {
        let (a, wa) = run_storm(seed, false, true);
        let (b, wb) = run_storm(seed, false, true);
        assert_eq!(
            a.schedule, b.schedule,
            "schedule diverged for seed {seed:#x}"
        );
        assert_eq!(a.history, b.history, "history diverged for seed {seed:#x}");
        assert_eq!(a.failure, b.failure);
        assert_eq!(a.steps, b.steps);
        assert_eq!(
            wa.with_locked(|p| p.eviction_order()),
            wb.with_locked(|p| p.eviction_order()),
            "final policy state diverged for seed {seed:#x}"
        );
        // PCT mode must be just as reproducible.
        let (c, _) = run_storm(seed, true, true);
        let (d, _) = run_storm(seed, true, true);
        assert_eq!(c.schedule, d.schedule);
        assert_eq!(c.history, d.history);
    }
}
