//! Property tests for the BP-Wrapper protocol.
//!
//! The central theorem being exercised: for a single thread, the wrapped
//! policy commits its queued hits in recording order before every miss
//! decision, so the composed system is **observationally identical** to
//! the bare policy for any trace, any policy, and any (S, T) setting.

use bpw_core::{WrappedCache, WrapperConfig};
use bpw_replacement::{CacheSim, PolicyKind};
use proptest::prelude::*;

fn any_policy() -> impl Strategy<Value = PolicyKind> {
    prop::sample::select(PolicyKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact hit/miss equivalence with the bare policy for arbitrary
    /// traces, cache sizes, and batching parameters.
    #[test]
    fn wrapped_equals_bare(
        kind in any_policy(),
        frames in 2usize..24,
        queue_size in 1usize..96,
        threshold_frac in 1usize..=100,
        prefetching in any::<bool>(),
        trace in prop::collection::vec(0u64..64, 1..600),
    ) {
        let threshold = ((queue_size * threshold_frac) / 100).clamp(1, queue_size);
        let cfg = WrapperConfig {
            queue_size,
            batch_threshold: threshold,
            batching: true,
            prefetching,
            combining: bpw_core::Combining::Off,
        };
        let mut bare = CacheSim::new(kind.build(frames));
        let mut wrapped = WrappedCache::new(kind.build(frames), cfg);
        for &p in &trace {
            let a = bare.access(p);
            let b = wrapped.access(p);
            prop_assert_eq!(a, b, "{} diverged on page {} (cfg {:?})", kind, p, cfg);
        }
        prop_assert_eq!(bare.stats(), wrapped.stats());
    }

    /// Lock accounting is conserved: every recorded access is either
    /// committed to the policy or (single-threaded: never) skipped, and
    /// the batch count never exceeds the access count.
    #[test]
    fn accounting_is_conserved(
        kind in any_policy(),
        frames in 2usize..16,
        trace in prop::collection::vec(0u64..32, 1..400),
    ) {
        let mut wrapped = WrappedCache::new(kind.build(frames), WrapperConfig::default());
        let stats = wrapped.run(trace.iter().copied());
        wrapped.flush();
        let c = wrapped.wrapper().counters();
        prop_assert_eq!(c.accesses.get(), trace.len() as u64);
        prop_assert_eq!(c.committed.get(), stats.hits);
        prop_assert_eq!(c.stale_skipped.get(), 0);
        prop_assert!(c.batches.get() <= c.accesses.get());
    }

    /// The effective batch size achieved is at least the configured
    /// threshold on a hit-only workload (no premature commits besides
    /// the final flush).
    #[test]
    fn batch_amortization_holds(
        s_exp in 1u32..7, // queue sizes 2..128
    ) {
        let queue_size = 1usize << s_exp;
        let threshold = (queue_size / 2).max(1);
        let cfg = WrapperConfig {
            queue_size,
            batch_threshold: threshold,
            batching: true,
            prefetching: false,
            combining: bpw_core::Combining::Off,
        };
        let frames = 16;
        let mut wrapped = WrappedCache::new(PolicyKind::Lru.build(frames), cfg);
        // Warm up, then hit-only phase.
        for p in 0..frames as u64 {
            wrapped.access(p);
        }
        let before = wrapped.wrapper().lock_stats().snapshot();
        let hits = 10_000u64;
        for i in 0..hits {
            wrapped.access(i % frames as u64);
        }
        wrapped.flush();
        let after = wrapped.wrapper().lock_stats().snapshot();
        let delta = after.since(&before);
        let per_acq = delta.accesses_per_acquisition();
        prop_assert!(
            per_acq >= threshold as f64 * 0.99,
            "expected >= {} accesses/lock, got {per_acq}",
            threshold
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The adaptive-threshold extension preserves the same observational
    /// equivalence as the fixed-threshold wrapper: for any trace, an
    /// AdaptiveHandle-driven cache makes identical hit/miss decisions to
    /// the bare policy.
    #[test]
    fn adaptive_handle_equals_bare(
        kind in any_policy(),
        frames in 2usize..20,
        trace in prop::collection::vec(0u64..48, 1..400),
    ) {
        use bpw_core::{AdaptiveConfig, AdaptiveHandle, BpWrapper};
        use bpw_replacement::MissOutcome;
        use std::collections::HashMap;

        let mut bare = CacheSim::new(kind.build(frames));
        let wrapper = BpWrapper::new(kind.build(frames), WrapperConfig::default());
        let mut handle = AdaptiveHandle::with_config(
            &wrapper,
            AdaptiveConfig { min_threshold: 2, initial_threshold: 8, ..Default::default() },
        );
        let mut map: HashMap<u64, u32> = HashMap::new();
        let mut free: Vec<u32> = (0..frames as u32).rev().collect();
        for &p in &trace {
            let bare_hit = bare.access(p);
            let wrapped_hit = if let Some(&f) = map.get(&p) {
                handle.record_hit(p, f);
                true
            } else {
                match handle.record_miss(p, free.pop(), &mut |_| true) {
                    MissOutcome::AdmittedFree(f) => {
                        map.insert(p, f);
                    }
                    MissOutcome::Evicted { frame, victim } => {
                        map.remove(&victim);
                        map.insert(p, frame);
                    }
                    MissOutcome::NoEvictableFrame => unreachable!(),
                }
                false
            };
            prop_assert_eq!(bare_hit, wrapped_hit, "{} diverged on page {}", kind, p);
        }
    }
}

/// Multi-threaded smoke property (fixed seeds, not proptest-driven): the
/// wrapper under concurrent hits never corrupts the policy and never
/// loses an access.
#[test]
fn concurrent_hits_conserve_accounting() {
    use bpw_core::BpWrapper;
    for kind in PolicyKind::ALL {
        let frames = 128usize;
        let wrapper = BpWrapper::new(kind.build(frames), WrapperConfig::default());
        wrapper.with_locked(|p| {
            for i in 0..frames as u64 {
                p.record_miss(i, Some(i as u32), &mut |_| true);
            }
        });
        let threads = 4;
        let per_thread = 20_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let wrapper = &wrapper;
                s.spawn(move || {
                    let mut h = wrapper.handle();
                    let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(t + 1);
                    for _ in 0..per_thread {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let page = x % frames as u64;
                        h.record_hit(page, page as u32);
                    }
                });
            }
        });
        let c = wrapper.counters();
        assert_eq!(c.accesses.get(), threads * per_thread, "{kind}");
        assert_eq!(
            c.committed.get() + c.stale_skipped.get(),
            threads * per_thread,
            "{kind}: accesses lost"
        );
        // Hit-only workload: no evictions, so nothing can be stale.
        assert_eq!(c.stale_skipped.get(), 0, "{kind}");
        wrapper.with_locked(|p| {
            p.check_invariants();
            assert_eq!(p.resident_count(), frames);
        });
    }
}
