//! Allocation audit for the publish fast path.
//!
//! The flat-combining protocol recycles two pre-sized batch buffers per
//! publication slot, exchanging queue storage by pointer swap. That
//! makes the entire contended hit path — record, threshold crossing,
//! failed trylock, publish (and the rejected-publish fallback) — free
//! of heap traffic. This test pins that property with a counting global
//! allocator: any `Box::new` or `Vec` growth slipped into the window
//! shows up as a nonzero delta.
//!
//! Not compiled under `--features dst`: the shim scheduler allocates
//! for its own bookkeeping inside the window.

#![cfg(not(feature = "dst"))]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bpw_core::{BpWrapper, WrapperConfig};
use bpw_replacement::{Lru, ReplacementPolicy};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

const FRAMES: usize = 64;
const QUEUE: usize = 64;
const THRESHOLD: usize = 8;

#[test]
fn publish_fast_path_does_not_allocate() {
    // S=64, T=8: eight hits cross the threshold and publish; eight more
    // cross it again, find the slot still occupied (the holder never
    // drains), and take the no-allocation fallback. Stops well short of
    // a full queue so the handle never blocks on the parked lock.
    let w = BpWrapper::new(
        Lru::new(FRAMES),
        WrapperConfig::default()
            .with_queue_size(QUEUE)
            .with_batch_threshold(THRESHOLD)
            .with_combining(true),
    );
    w.with_locked(|p| {
        for f in 0..FRAMES as u64 {
            p.record_miss(f, Some(f as u32), &mut |_| true);
        }
    });
    let w = Arc::new(w);

    // Park a thread inside the policy lock for the whole window, so
    // every threshold crossing sees a busy lock. The warm-up above
    // already counted an acquisition, so wait relative to a baseline.
    let baseline = w.lock_stats().snapshot().acquisitions;
    let hold = Arc::new(AtomicBool::new(true));
    let holder = {
        let w = Arc::clone(&w);
        let hold = Arc::clone(&hold);
        std::thread::spawn(move || {
            w.with_locked(|_| {
                while hold.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
            })
        })
    };
    while w.lock_stats().snapshot().acquisitions == baseline {
        std::hint::spin_loop();
    }

    let mut h = w.handle_arc();
    // Warm the handle's slot registration and first-touch paths outside
    // the measured window.
    h.record_hit(0, 0);

    let before = ALLOCS.load(Ordering::SeqCst);
    for k in 0..(2 * THRESHOLD as u64 - 1) {
        let page = k % FRAMES as u64;
        h.record_hit(page, page as u32);
    }
    let after = ALLOCS.load(Ordering::SeqCst);

    hold.store(false, Ordering::Release);
    holder.join().unwrap();

    let snap = w.combining_snapshot();
    assert!(
        snap.published >= 1,
        "window never published (published={}); fast path untested",
        snap.published
    );
    assert!(
        snap.publish_fallbacks >= 1,
        "window never exercised the rejected-publish fallback \
         (fallbacks={})",
        snap.publish_fallbacks
    );
    assert_eq!(
        after - before,
        0,
        "publish fast path allocated {} time(s); the recycled-buffer \
         protocol must not touch the heap",
        after - before
    );

    drop(h);
    let snap = w.combining_snapshot();
    assert_eq!(snap.published as i64 - snap.reclaimed as i64, 0);
    w.with_locked(|p| p.check_invariants());
}
