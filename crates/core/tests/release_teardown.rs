//! Regression tests for the publication-slot release hole, meant to run
//! in BOTH profiles (CI runs them under `--release`).
//!
//! The original `PublicationBoard::release` only `debug_assert!`ed the
//! slot empty. In a release build the assert compiles away, so a handle
//! torn down with a batch still published would hand the slot — batch
//! and all — to the next registrant: the stranded accesses either
//! vanished or were committed under the wrong owner. Debug-only tests
//! cannot catch that; these run the exact scenario in whatever profile
//! the harness was built with.

#![cfg(not(feature = "dst"))]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bpw_core::{AccessEntry, BpWrapper, PublicationBoard, WrapperConfig};
use bpw_replacement::{Lru, ReplacementPolicy};

/// Board-level: releasing a slot with a pending batch must hand the
/// batch back, and the recycled slot must start clean for its next
/// owner.
#[test]
fn release_returns_pending_batch_and_recycles_clean() {
    let board = PublicationBoard::new(2, 8);
    let slot = board.register().expect("slot");
    let mut batch: Vec<AccessEntry> = (0..5)
        .map(|i| AccessEntry {
            page: i,
            frame: i as u32,
        })
        .collect();
    assert!(board.publish(slot, &mut batch));
    assert!(batch.is_empty(), "publish must take the entries");

    let orphan = board
        .release(slot)
        .expect("release must return the pending batch, not drop it");
    assert_eq!(orphan.len(), 5);
    assert_eq!(orphan[0].page, 0);
    assert_eq!(orphan[4].frame, 4);

    // The recycled slot must be empty and fully usable by a new owner.
    let slot2 = board.register().expect("recycled slot");
    assert!(!board.is_published(slot2));
    let mut fresh: Vec<AccessEntry> = vec![AccessEntry { page: 9, frame: 9 }];
    assert!(board.publish(slot2, &mut fresh));
    let taken = board.take(slot2).expect("fresh owner's batch");
    assert_eq!(taken.len(), 1);
    assert_eq!(taken[0].page, 9);
    drop(taken);
    assert_eq!(board.release(slot2).map(|b| b.len()), None);
}

/// Wrapper-level: a handle dropped while its batch sits published (the
/// lock holder never drained it) must still commit every access. Before
/// the fix the batch was silently leaked in release builds.
#[test]
fn handle_teardown_commits_published_batch() {
    const FRAMES: usize = 16;
    let w = BpWrapper::new(
        Lru::new(FRAMES),
        WrapperConfig::default()
            .with_queue_size(4)
            .with_batch_threshold(4)
            .with_combining(true),
    );
    w.with_locked(|p| {
        for f in 0..FRAMES as u64 {
            p.record_miss(f, Some(f as u32), &mut |_| true);
        }
    });
    let w = Arc::new(w);

    // The warm-up above already counted an acquisition, so wait for the
    // holder relative to a baseline — not for a nonzero count.
    let baseline = w.lock_stats().snapshot().acquisitions;
    let hold = Arc::new(AtomicBool::new(true));
    let holder = {
        let w = Arc::clone(&w);
        let hold = Arc::clone(&hold);
        std::thread::spawn(move || {
            w.with_locked(|_| {
                while hold.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
            })
        })
    };
    while w.lock_stats().snapshot().acquisitions == baseline {
        std::hint::spin_loop();
    }

    let mut h = w.handle_arc();
    for p in 0..4u64 {
        h.record_hit(p, p as u32); // fills the queue -> publishes
    }
    assert_eq!(
        w.combining_snapshot().published,
        1,
        "setup failed: the queue never published"
    );

    // Tear the handle down on its own thread: its Drop finds the batch
    // still published (queue empty, so flush is a no-op), takes it back
    // via release, and blocks to commit it — it can only finish after
    // the holder lets go.
    let dropper = std::thread::spawn(move || drop(h));
    hold.store(false, Ordering::Release);
    holder.join().unwrap();
    dropper.join().unwrap();

    let accesses = w.counters().accesses.get();
    let committed = w.counters().committed.get() + w.counters().stale_skipped.get();
    assert_eq!(
        accesses,
        committed,
        "teardown stranded {} recorded access(es) in the released slot",
        accesses - committed
    );
    w.with_locked(|p| p.check_invariants());
}
