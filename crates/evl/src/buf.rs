//! Outbound byte buffering for nonblocking sockets.
//!
//! A readiness loop can't `write_all`: the kernel accepts what fits in
//! the socket buffer and returns `WouldBlock` for the rest. [`WriteBuf`]
//! queues response bytes (coalescing every response generated in one
//! wakeup into a single write attempt) and drains across short writes,
//! reporting progress so the loop knows when to register — and when to
//! drop — write interest.

use std::io::{self, Write};

/// What one [`WriteBuf::flush`] attempt achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushProgress {
    /// Bytes the kernel accepted this call.
    pub written: usize,
    /// The buffer is empty; write interest can be dropped.
    pub done: bool,
    /// Write syscalls that accepted only part of what was offered —
    /// each one is a point where a blocking server would have stalled
    /// the whole connection thread.
    pub short_writes: u64,
}

/// A draining outbound buffer.
#[derive(Debug, Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    /// An empty buffer.
    pub fn new() -> WriteBuf {
        WriteBuf::default()
    }

    /// Queue bytes (one response frame, typically) for the next flush.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes queued and not yet accepted by the kernel.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Nothing left to write.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Write as much as the socket will take. `WouldBlock` is progress
    /// information, not an error; real transport errors surface as
    /// `Err` so the caller can close the connection.
    pub fn flush(&mut self, w: &mut impl Write) -> io::Result<FlushProgress> {
        let mut progress = FlushProgress {
            written: 0,
            done: false,
            short_writes: 0,
        };
        while self.pos < self.buf.len() {
            let offered = self.buf.len() - self.pos;
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.pos += n;
                    progress.written += n;
                    if n < offered {
                        progress.short_writes += 1;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            progress.done = true;
        } else if self.pos > 64 * 1024 {
            // Reclaim the drained prefix once it is large enough to
            // matter, without shifting bytes on every partial write.
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(progress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that accepts at most `cap` bytes per call and blocks
    /// after `limit` total bytes — a socket buffer in miniature.
    struct Throttled {
        sunk: Vec<u8>,
        cap: usize,
        limit: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            if self.sunk.len() >= self.limit {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let n = data.len().min(self.cap).min(self.limit - self.sunk.len());
            self.sunk.extend_from_slice(&data[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn drains_across_short_writes_and_wouldblock() {
        let mut wb = WriteBuf::new();
        wb.push(b"hello ");
        wb.push(b"world");
        assert_eq!(wb.pending(), 11);

        let mut w = Throttled {
            sunk: Vec::new(),
            cap: 4,
            limit: 7,
        };
        let p = wb.flush(&mut w).unwrap();
        assert!(!p.done);
        assert_eq!(p.written, 7);
        assert!(p.short_writes >= 1, "4-byte cap must register short writes");
        assert_eq!(wb.pending(), 4);

        // "Socket buffer" empties; the rest goes out.
        w.limit = usize::MAX;
        let p = wb.flush(&mut w).unwrap();
        assert!(p.done);
        assert_eq!(w.sunk, b"hello world");
        assert!(wb.is_empty());

        // Flushing an empty buffer is a cheap no-op reporting done.
        assert!(wb.flush(&mut w).unwrap().done);
    }

    #[test]
    fn transport_errors_surface() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut wb = WriteBuf::new();
        wb.push(b"x");
        assert_eq!(
            wb.flush(&mut Broken).unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
    }
}
