//! Raw syscall surface for the event loop.
//!
//! The workspace builds offline with no crates.io registry, so there is
//! no `libc` crate to lean on. Every binary already links the platform
//! C library, though, so the epoll and eventfd entry points are declared
//! here directly — exactly the symbols the loop needs and nothing more.
//! All wrappers translate `-1` returns into [`io::Error::last_os_error`]
//! so callers stay in ordinary `io::Result` land.

use std::io;
use std::os::unix::io::RawFd;

/// `epoll_event.events` bit: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// `epoll_event.events` bit: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// `epoll_event.events` bit: error condition.
pub const EPOLLERR: u32 = 0x008;
/// `epoll_event.events` bit: hangup (peer closed both directions).
pub const EPOLLHUP: u32 = 0x010;
/// `epoll_event.events` bit: peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// `epoll_event.events` bit: edge-triggered delivery.
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs it
/// (no padding between `events` and `data`); elsewhere it has natural
/// alignment — mirror glibc's definition.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLLIN` | ...).
    pub events: u32,
    /// Caller-owned token, returned verbatim with each event.
    pub data: u64,
}

impl EpollEvent {
    /// A zeroed event (buffer filler before `epoll_wait`).
    pub const ZERO: EpollEvent = EpollEvent { events: 0, data: 0 };
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// `epoll_create1(EPOLL_CLOEXEC)`.
pub fn sys_epoll_create() -> io::Result<RawFd> {
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

/// Register `fd` with interest `events` and token `data`.
pub fn sys_epoll_add(epfd: RawFd, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(drop)
}

/// Change `fd`'s interest set.
pub fn sys_epoll_mod(epfd: RawFd, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(drop)
}

/// Deregister `fd`.
pub fn sys_epoll_del(epfd: RawFd, fd: RawFd) -> io::Result<()> {
    let mut ev = EpollEvent::ZERO;
    cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(drop)
}

/// Wait up to `timeout_ms` (-1 = forever) for readiness; fills `buf`
/// from the front and returns how many entries are valid. `EINTR` is
/// reported as zero events rather than an error — the loop just goes
/// around again.
pub fn sys_epoll_wait(epfd: RawFd, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
    if n < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(n as usize)
}

/// A nonblocking `eventfd(0)`.
pub fn sys_eventfd() -> io::Result<RawFd> {
    cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
}

/// Best-effort close (fd tables are process-local; errors are ignored
/// the way `std` ignores them in `Drop`).
pub fn sys_close(fd: RawFd) {
    unsafe {
        close(fd);
    }
}

/// Raw `read`; the caller owns nonblocking/EAGAIN handling.
pub fn sys_read(fd: RawFd, buf: &mut [u8]) -> io::Result<usize> {
    let n = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

/// Raw `write`; the caller owns nonblocking/EAGAIN handling.
pub fn sys_write(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
    let n = unsafe { write(fd, buf.as_ptr(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_event_matches_kernel_abi() {
        // x86-64 packs the struct to 12 bytes; everywhere else it is 16.
        if cfg!(target_arch = "x86_64") {
            assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
        } else {
            assert_eq!(std::mem::size_of::<EpollEvent>(), 16);
        }
    }

    #[test]
    fn eventfd_round_trips_a_wake() {
        let fd = sys_eventfd().unwrap();
        // Nothing written yet: nonblocking read reports WouldBlock.
        let mut buf = [0u8; 8];
        assert_eq!(
            sys_read(fd, &mut buf).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        assert_eq!(sys_write(fd, &1u64.to_ne_bytes()).unwrap(), 8);
        assert_eq!(sys_read(fd, &mut buf).unwrap(), 8);
        assert_eq!(u64::from_ne_bytes(buf), 1);
        sys_close(fd);
    }
}
