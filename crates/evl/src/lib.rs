//! # bpw-evl
//!
//! The readiness event-loop core under the page service's `eventloop`
//! frontend: a hand-rolled epoll binding ([`Epoll`], [`Interest`],
//! [`Ready`]) over raw syscalls ([`sys`]), an eventfd-backed
//! cross-thread wakeup ([`WakeFd`]), and a draining outbound buffer
//! ([`WriteBuf`]) for nonblocking sockets.
//!
//! The workspace builds offline, so this crate vendors nothing and
//! depends on nothing: the few kernel entry points it needs are declared
//! directly against the C library every Rust binary already links.
//! Protocol knowledge stays out — `bpw-server` owns frames and request
//! semantics; this crate owns readiness, wakeups, and byte shoveling,
//! which is what makes it reusable for any future network-facing
//! subsystem (replication, a metrics listener, a tenant-control plane).

mod buf;
mod epoll;
pub mod sys;

pub use buf::{FlushProgress, WriteBuf};
pub use epoll::{Epoll, Interest, Ready, WakeFd};
