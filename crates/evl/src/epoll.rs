//! Safe wrappers over the raw epoll surface: an [`Epoll`] instance with
//! token-based registration, an [`Interest`] builder covering level- and
//! edge-triggered delivery, and a [`WakeFd`] (eventfd) for cross-thread
//! wakeups.

use std::io;
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::Duration;

use crate::sys::{
    sys_close, sys_epoll_add, sys_epoll_create, sys_epoll_del, sys_epoll_mod, sys_epoll_wait,
    sys_eventfd, sys_read, sys_write, EpollEvent, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT,
    EPOLLRDHUP,
};

/// What a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
    edge: bool,
}

impl Interest {
    /// Readable only, level-triggered.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
        edge: false,
    };
    /// Writable only, level-triggered.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
        edge: false,
    };
    /// Readable and writable, level-triggered.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
        edge: false,
    };
    /// Neither direction: registration stays alive (hangups are still
    /// reported) but delivers no read/write events — how the loop parks
    /// a connection it is flow-controlling.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
        edge: false,
    };

    /// Switch to edge-triggered delivery: one event per readiness
    /// *transition*, so the consumer must drain to `WouldBlock` before
    /// waiting again.
    pub fn edge_triggered(mut self) -> Interest {
        self.edge = true;
        self
    }

    fn bits(self) -> u32 {
        // RDHUP is always on: a peer's half-close should wake the loop
        // even when the connection is parked.
        let mut bits = EPOLLRDHUP;
        if self.readable {
            bits |= EPOLLIN;
        }
        if self.writable {
            bits |= EPOLLOUT;
        }
        if self.edge {
            bits |= EPOLLET;
        }
        bits
    }
}

/// One delivered readiness event.
#[derive(Debug, Clone, Copy)]
pub struct Ready {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd can be read (or accepted) without blocking.
    pub readable: bool,
    /// The fd can be written without blocking.
    pub writable: bool,
    /// Error or hangup condition; the owner should read to EOF / close.
    pub hangup: bool,
}

impl Ready {
    fn from_event(ev: EpollEvent) -> Ready {
        // `ev` is a by-value copy: field reads from the (possibly
        // packed) struct are safe here.
        let bits = ev.events;
        Ready {
            token: ev.data,
            readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
            writable: bits & EPOLLOUT != 0,
            hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
        }
    }
}

/// An epoll instance plus a reusable event buffer.
pub struct Epoll {
    epfd: RawFd,
    buf: Vec<EpollEvent>,
}

impl Epoll {
    /// Create an instance able to deliver up to `capacity` events per
    /// [`wait`](Self::wait).
    pub fn new(capacity: usize) -> io::Result<Epoll> {
        Ok(Epoll {
            epfd: sys_epoll_create()?,
            buf: vec![EpollEvent::ZERO; capacity.max(1)],
        })
    }

    /// Register `fd` under `token`.
    pub fn add(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys_epoll_add(self.epfd, fd.as_raw_fd(), interest.bits(), token)
    }

    /// Change `fd`'s interest set (token may change too).
    pub fn modify(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys_epoll_mod(self.epfd, fd.as_raw_fd(), interest.bits(), token)
    }

    /// Deregister `fd`.
    pub fn delete(&self, fd: &impl AsRawFd) -> io::Result<()> {
        sys_epoll_del(self.epfd, fd.as_raw_fd())
    }

    /// Block up to `timeout` (None = forever) and return the ready set.
    /// A signal or timeout yields an empty slice, not an error.
    pub fn wait(
        &mut self,
        timeout: Option<Duration>,
    ) -> io::Result<impl Iterator<Item = Ready> + '_> {
        let ms = match timeout {
            None => -1,
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
        };
        let n = sys_epoll_wait(self.epfd, &mut self.buf, ms)?;
        Ok(self.buf[..n].iter().map(|&ev| Ready::from_event(ev)))
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        sys_close(self.epfd);
    }
}

/// A cross-thread wakeup channel: any thread [`notify`](Self::notify)s,
/// the loop sees the fd readable and [`drain`](Self::drain)s it back to
/// quiescent. Backed by a nonblocking eventfd, so notify never blocks
/// and coalesces arbitrarily many signals into one wakeup.
pub struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    /// Create the eventfd.
    pub fn new() -> io::Result<WakeFd> {
        Ok(WakeFd { fd: sys_eventfd()? })
    }

    /// Wake the loop (callable from any thread, lock-free).
    pub fn notify(&self) {
        // An eventfd write only blocks at u64::MAX - 1 pending signals;
        // treat that (and any other failure) as "the loop is already
        // very awake".
        let _ = sys_write(self.fd, &1u64.to_ne_bytes());
    }

    /// Consume all pending notifications; returns how many were folded
    /// together (0 when the wake was spurious).
    pub fn drain(&self) -> u64 {
        let mut buf = [0u8; 8];
        match sys_read(self.fd, &mut buf) {
            Ok(8) => u64::from_ne_bytes(buf),
            _ => 0,
        }
    }
}

impl AsRawFd for WakeFd {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        sys_close(self.fd);
    }
}

// Safety: WakeFd is just an fd; eventfd reads/writes are thread-safe.
unsafe impl Send for WakeFd {}
unsafe impl Sync for WakeFd {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready_tokens(epoll: &mut Epoll, timeout: Duration) -> Vec<u64> {
        epoll
            .wait(Some(timeout))
            .unwrap()
            .map(|r| r.token)
            .collect()
    }

    #[test]
    fn level_triggered_stays_ready_until_drained() {
        let mut epoll = Epoll::new(8).unwrap();
        let wake = WakeFd::new().unwrap();
        epoll.add(&wake, 42, Interest::READ).unwrap();

        wake.notify();
        assert_eq!(ready_tokens(&mut epoll, Duration::from_secs(5)), vec![42]);
        // Level-triggered: still ready until the eventfd is drained.
        assert_eq!(ready_tokens(&mut epoll, Duration::from_secs(5)), vec![42]);
        assert_eq!(wake.drain(), 1);
        assert!(ready_tokens(&mut epoll, Duration::from_millis(10)).is_empty());
    }

    #[test]
    fn edge_triggered_fires_once_per_transition() {
        let mut epoll = Epoll::new(8).unwrap();
        let wake = WakeFd::new().unwrap();
        epoll
            .add(&wake, 7, Interest::READ.edge_triggered())
            .unwrap();

        wake.notify();
        wake.notify();
        assert_eq!(ready_tokens(&mut epoll, Duration::from_secs(5)), vec![7]);
        // Edge-triggered and not drained: no second event for the same
        // readiness edge.
        assert!(ready_tokens(&mut epoll, Duration::from_millis(20)).is_empty());
        // Both notifies coalesced into one counter value.
        assert_eq!(wake.drain(), 2);
        // A fresh write is a fresh edge.
        wake.notify();
        assert_eq!(ready_tokens(&mut epoll, Duration::from_secs(5)), vec![7]);
    }

    #[test]
    fn interest_none_silences_a_ready_fd() {
        let mut epoll = Epoll::new(8).unwrap();
        let wake = WakeFd::new().unwrap();
        epoll.add(&wake, 1, Interest::READ).unwrap();
        wake.notify();
        assert_eq!(ready_tokens(&mut epoll, Duration::from_secs(5)), vec![1]);
        // Park it: still registered, but no events delivered.
        epoll.modify(&wake, 1, Interest::NONE).unwrap();
        assert!(ready_tokens(&mut epoll, Duration::from_millis(20)).is_empty());
        // Unpark: the level-triggered readiness resurfaces immediately.
        epoll.modify(&wake, 1, Interest::READ).unwrap();
        assert_eq!(ready_tokens(&mut epoll, Duration::from_secs(5)), vec![1]);
        epoll.delete(&wake).unwrap();
        wake.notify();
        assert!(ready_tokens(&mut epoll, Duration::from_millis(20)).is_empty());
    }

    #[test]
    fn tcp_sockets_report_read_write_and_hangup() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut epoll = Epoll::new(8).unwrap();
        epoll.add(&listener, 1, Interest::READ).unwrap();

        // A connect makes the listener readable (accept won't block).
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        assert_eq!(ready_tokens(&mut epoll, Duration::from_secs(5)), vec![1]);
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        epoll.add(&server_side, 2, Interest::READ_WRITE).unwrap();

        // Idle socket with write interest: writable, not readable.
        let evs: Vec<Ready> = epoll
            .wait(Some(Duration::from_secs(5)))
            .unwrap()
            .filter(|r| r.token == 2)
            .collect();
        assert!(evs.iter().any(|r| r.writable && !r.readable));

        // Bytes from the peer: readable.
        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        let saw_readable = |epoll: &mut Epoll| {
            epoll
                .wait(Some(Duration::from_secs(5)))
                .unwrap()
                .any(|r| r.token == 2 && r.readable)
        };
        assert!(saw_readable(&mut epoll));

        // Peer hangup: readable (EOF) — and RDHUP even if parked.
        epoll.modify(&server_side, 2, Interest::NONE).unwrap();
        drop(client);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut saw_hup = false;
        while std::time::Instant::now() < deadline && !saw_hup {
            saw_hup = epoll
                .wait(Some(Duration::from_millis(100)))
                .unwrap()
                .any(|r| r.token == 2 && (r.readable || r.hangup));
        }
        assert!(saw_hup, "peer close must surface despite Interest::NONE");
    }
}
