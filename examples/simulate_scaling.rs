//! A compact version of the paper's Figure 6: simulate one workload's
//! throughput for all five systems as processors scale, and print the
//! curves side by side. (The full figures are the `fig6_*`/`fig7_*`
//! binaries in `bpw-bench`.)
//!
//! Run with: `cargo run --release --example simulate_scaling [dbt1|dbt2|tablescan]`

use bpw_core::SystemKind;
use bpw_sim::{simulate, HardwareProfile, SimParams, SystemSpec, WorkloadParams};
use bpw_workloads::WorkloadKind;

fn main() {
    let kind: WorkloadKind = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("dbt1 | dbt2 | tablescan"))
        .unwrap_or(WorkloadKind::Dbt1);
    let wl = WorkloadParams::for_kind(kind);
    let hw = HardwareProfile::altix350();
    println!(
        "{} on simulated {} (up to {} processors)\n",
        wl.name, hw.name, hw.cpus
    );
    print!("{:>5}", "cpus");
    for k in SystemKind::ALL {
        print!("{:>12}", k.name());
    }
    println!("{:>14}", "BatPre/Clock");
    let mut cpus = 1;
    while cpus <= hw.cpus {
        let mut row = format!("{cpus:>5}");
        let mut clock_tps = 0.0;
        let mut batpre_tps = 0.0;
        for k in SystemKind::ALL {
            let mut p = SimParams::new(hw, cpus, SystemSpec::new(k), wl.clone());
            p.horizon_ms = 500;
            let r = simulate(p);
            if k == SystemKind::Clock {
                clock_tps = r.throughput_tps;
            }
            if k == SystemKind::BatchingPrefetching {
                batpre_tps = r.throughput_tps;
            }
            row += &format!("{:>12.0}", r.throughput_tps);
        }
        println!("{row}{:>13.2}x", batpre_tps / clock_tps);
        cpus *= 2;
    }
    println!("\npgBatPre tracks the lock-free clock baseline; pgQ saturates early —");
    println!("the paper's 'up to two-fold throughput increase' comes from closing that gap.");
}
