//! Hit-ratio bake-off: all eight replacement policies across the three
//! paper workloads and two synthetic stress patterns, at several cache
//! sizes. This is the "advanced algorithms earn their complexity" half
//! of the paper's argument — the half BP-Wrapper preserves.
//!
//! Run with: `cargo run --release --example compare_policies`

use bpw_replacement::{CacheSim, PolicyKind};
use bpw_workloads::{Trace, Workload, WorkloadKind, ZipfWorkload};

fn trace_for(workload: &dyn Workload, txns: usize) -> Vec<u64> {
    // Interleave four threads transaction-by-transaction.
    let traces = Trace::capture_per_thread(workload, 4, txns, 0xCAFE);
    let per_thread: Vec<Vec<&[u64]>> = traces.iter().map(|t| t.transactions().collect()).collect();
    let mut flat = Vec::new();
    for round in 0..txns {
        for th in &per_thread {
            if let Some(t) = th.get(round) {
                flat.extend_from_slice(t);
            }
        }
    }
    flat
}

fn main() {
    let mut scenarios: Vec<(String, Vec<u64>, Vec<usize>)> = Vec::new();
    for kind in WorkloadKind::ALL {
        let w = kind.build();
        let trace = trace_for(&*w, 600);
        let distinct = {
            let mut v = trace.clone();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        let sizes = vec![distinct / 20, distinct / 5, distinct / 2];
        scenarios.push((kind.name().to_owned(), trace, sizes));
    }
    // Loop slightly larger than cache: LRU pathology. One thread, pure
    // cycle — interleaved staggered scans would dilute the effect.
    let loop_trace: Vec<u64> = (0..1100u64).cycle().take(13_200).collect();
    scenarios.push(("Loop-1100".to_owned(), loop_trace, vec![1000]));
    // Heavy Zipf point accesses.
    let zipf = ZipfWorkload::new(50_000, 0.9, 20);
    scenarios.push((
        "Zipf-0.9".to_owned(),
        trace_for(&zipf, 2_000),
        vec![500, 2_500],
    ));

    for (name, trace, sizes) in &scenarios {
        println!("=== {name} ({} accesses) ===", trace.len());
        print!("{:>10}", "frames");
        for kind in PolicyKind::ALL {
            print!("{:>10}", kind.name());
        }
        println!();
        for &frames in sizes {
            let frames = frames.max(16);
            print!("{frames:>10}");
            for kind in PolicyKind::ALL {
                let mut sim = CacheSim::new(kind.build(frames));
                let stats = sim.run(trace.iter().copied());
                print!("{:>9.1}%", stats.hit_ratio() * 100.0);
            }
            println!();
        }
        println!();
    }
    println!("Note the Loop row: CLOCK/LRU collapse on a loop 10% larger than the cache,");
    println!("while LIRS keeps most of it resident — the kind of advantage the paper says");
    println!("DBMSs were giving up by retreating to clock approximations.");
}
