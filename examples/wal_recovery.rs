//! Write-ahead logging, group commit, and crash recovery through the
//! buffer pool — the substrate behind the paper's observation that
//! DBT-2's scaling is capped by "the lock that serializes
//! Write-Ahead-Logging activities", and a second instance of the
//! batching idea (group commit is to the log flush what BP-Wrapper's
//! queues are to the replacement lock).
//!
//! Run with: `cargo run --release --example wal_recovery`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bpw_bufferpool::{BufferPool, SimDisk, Storage, Wal, WrappedManager};
use bpw_core::WrapperConfig;
use bpw_replacement::TwoQ;

fn main() {
    let frames = 256;
    let wal = Arc::new(Wal::new(Duration::from_micros(500)));
    let storage: Arc<SimDisk> = Arc::new(SimDisk::instant());

    // --- Phase 1: concurrent transactions write and commit ------------
    let committed = AtomicU64::new(0);
    {
        let pool = BufferPool::new(
            frames,
            128,
            WrappedManager::new(TwoQ::new(frames), WrapperConfig::default()),
            Arc::clone(&storage) as Arc<dyn Storage>,
        )
        .with_wal(Arc::clone(&wal));

        std::thread::scope(|s| {
            for t in 0..4u64 {
                let pool = &pool;
                let wal = &wal;
                let committed = &committed;
                s.spawn(move || {
                    let mut session = pool.session();
                    for txn in 0..100u64 {
                        // Each transaction updates three pages.
                        let mut last_lsn = 0;
                        for k in 0..3u64 {
                            let page = (t * 1_000) + txn * 3 + k;
                            let pinned = session.fetch(page).expect("storage I/O failed");
                            pinned.write(|data| {
                                data[32] = 0xD0 + t as u8; // transaction marker
                            });
                            last_lsn = wal.append_lsn();
                        }
                        wal.commit(last_lsn).expect("log flush failed");
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        println!(
            "phase 1: {} transactions committed",
            committed.load(Ordering::Relaxed)
        );
        println!(
            "  WAL: {} appends, {} commits, {} physical flushes ({:.1} commits/flush via group commit)",
            wal.appends.get(),
            wal.commits.get(),
            wal.flushes.get(),
            wal.commits_per_flush()
        );
        println!(
            "  storage writes before crash: {} (dirty pages still in the buffer)",
            storage.writes()
        );
        // --- CRASH: pool dropped, every dirty buffer lost --------------
    }

    // --- Phase 2: recovery --------------------------------------------
    let redo_before = storage.writes();
    BufferPool::<WrappedManager<TwoQ>>::replay_wal_into_storage(&wal, &*storage)
        .expect("recovery replay failed");
    println!(
        "\nphase 2 (recovery): {} redo writes from {} durable WAL bytes",
        storage.writes() - redo_before,
        wal.durable_bytes()
    );

    // --- Phase 3: verify ------------------------------------------------
    let pool = BufferPool::new(
        frames,
        128,
        WrappedManager::new(TwoQ::new(frames), WrapperConfig::default()),
        Arc::clone(&storage) as Arc<dyn Storage>,
    );
    let mut session = pool.session();
    let mut verified = 0;
    for t in 0..4u64 {
        for txn in 0..100u64 {
            for k in 0..3u64 {
                let page = (t * 1_000) + txn * 3 + k;
                let pinned = session.fetch(page).expect("storage I/O failed");
                pinned.read(|data| {
                    assert_eq!(
                        data[32],
                        0xD0 + t as u8,
                        "page {page}: committed write lost in the crash"
                    );
                });
                verified += 1;
            }
        }
    }
    println!("phase 3: all {verified} committed page versions recovered intact");
}
