//! Quickstart: wrap an unmodified LIRS policy with BP-Wrapper and hammer
//! it from several threads. Hits are recorded in private per-thread FIFO
//! queues and committed in batches, so the lock is (almost) never
//! contended.
//!
//! Run with: `cargo run --release --example quickstart`

use bpw_core::{BpWrapper, WrapperConfig};
use bpw_replacement::{Lirs, ReplacementPolicy};

fn main() {
    let frames = 4096;
    // 1. Any ReplacementPolicy works unmodified; LIRS here.
    let policy = Lirs::new(frames);

    // 2. Wrap it. Defaults: queue size S = 64, batch threshold T = 32,
    //    batching + prefetching on (the paper's pgBatPre).
    let wrapper = BpWrapper::new(policy, WrapperConfig::default());

    // 3. Pre-warm the buffer (the paper's scalability setup: the working
    //    set fits, so every access is a hit).
    wrapper.with_locked(|p| {
        for i in 0..frames as u64 {
            p.record_miss(i, Some(i as u32), &mut |_| true);
        }
    });

    // 4. Worker threads record hits through private handles.
    let threads = 4;
    let per_thread = 1_000_000u64;
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let wrapper = &wrapper;
            s.spawn(move || {
                let mut handle = wrapper.handle();
                let mut x = 0x243F_6A88_85A3_08D3u64 ^ t; // pi digits as seed
                for _ in 0..per_thread {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let page = x % frames as u64;
                    handle.record_hit(page, page as u32);
                }
            }); // handle drop flushes the remaining queue
        }
    });
    let elapsed = t0.elapsed();

    // 5. Inspect what the lock saw.
    let total = threads * per_thread;
    let snap = wrapper.lock_stats().snapshot();
    let counters = wrapper.counters();
    println!("accesses recorded      : {total}");
    println!(
        "throughput             : {:.1} M accesses/s",
        total as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!(
        "lock acquisitions      : {} (1 per {:.1} accesses)",
        snap.acquisitions,
        total as f64 / snap.acquisitions as f64
    );
    println!(
        "blocked acquisitions   : {} ({:.2} per million accesses)",
        snap.contentions,
        wrapper.contentions_per_million()
    );
    println!("failed try-locks       : {}", snap.trylock_failures);
    println!("accesses committed     : {}", counters.committed.get());
    println!("stale entries skipped  : {}", counters.stale_skipped.get());

    // The policy is intact and internally consistent.
    wrapper.with_locked(|p| {
        p.check_invariants();
        assert_eq!(p.resident_count(), frames);
    });
    println!("policy invariants      : OK ({} resident pages)", frames);
}
