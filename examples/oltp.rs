//! An OLTP (TPC-C-like) workload through the buffer pool with a buffer
//! smaller than the data set: the Fig. 8 regime. Shows that the wrapped
//! advanced policy keeps its hit-ratio advantage over CLOCK while doing
//! a fraction of the locking.
//!
//! Run with: `cargo run --release --example oltp`

use std::sync::Arc;

use bpw_bufferpool::{
    BufferPool, ClockManager, CoarseManager, ReplacementManager, SimDisk, WrappedManager,
};
use bpw_core::WrapperConfig;
use bpw_replacement::TwoQ;
use bpw_workloads::{Tpcc, TpccConfig, Workload};

fn drive<M: ReplacementManager>(
    pool: &BufferPool<M>,
    workload: &Tpcc,
    threads: usize,
    txns: usize,
) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let pool = &pool;
            let mut stream = workload.stream(t, 7);
            s.spawn(move || {
                let mut session = pool.session();
                let mut buf = Vec::new();
                for _ in 0..txns {
                    buf.clear();
                    stream.next_transaction(&mut buf);
                    for &page in &buf {
                        let pinned = session.fetch(page).expect("storage I/O failed");
                        pinned.read(|bytes| std::hint::black_box(bytes[0]));
                    }
                }
            });
        }
    });
}

struct Outcome {
    name: &'static str,
    hit_ratio: f64,
    acquisitions: u64,
    contentions: u64,
}

fn main() {
    let workload = Tpcc::new(TpccConfig { warehouses: 2 });
    // Buffer = 10% of the database: misses matter.
    let frames = (workload.page_universe() / 10) as usize;
    let threads = 4;
    let txns = 2_000;
    println!(
        "TPC-C-like: {} pages database, {} frames buffer, {} threads x {} txns\n",
        workload.page_universe(),
        frames,
        threads,
        txns
    );

    let mut outcomes = Vec::new();

    {
        let pool = BufferPool::new(
            frames,
            256,
            ClockManager::new(frames),
            Arc::new(SimDisk::instant()),
        );
        drive(&pool, &workload, threads, txns);
        let snap = pool.manager().lock_snapshot();
        outcomes.push(Outcome {
            name: "pgClock   (CLOCK, lock-free hits)",
            hit_ratio: pool.stats().hit_ratio(),
            acquisitions: snap.acquisitions,
            contentions: snap.contentions,
        });
    }
    {
        let pool = BufferPool::new(
            frames,
            256,
            CoarseManager::new(TwoQ::new(frames)),
            Arc::new(SimDisk::instant()),
        );
        drive(&pool, &workload, threads, txns);
        let snap = pool.manager().lock_snapshot();
        outcomes.push(Outcome {
            name: "pgQ       (2Q, lock per access)",
            hit_ratio: pool.stats().hit_ratio(),
            acquisitions: snap.acquisitions,
            contentions: snap.contentions,
        });
    }
    {
        let pool = BufferPool::new(
            frames,
            256,
            WrappedManager::new(TwoQ::new(frames), WrapperConfig::default()),
            Arc::new(SimDisk::instant()),
        );
        drive(&pool, &workload, threads, txns);
        let snap = pool.manager().lock_snapshot();
        outcomes.push(Outcome {
            name: "pgBatPre  (2Q under BP-Wrapper)",
            hit_ratio: pool.stats().hit_ratio(),
            acquisitions: snap.acquisitions,
            contentions: snap.contentions,
        });
    }

    for o in &outcomes {
        println!(
            "{:<36} hit ratio {:>6.2}%  lock acquisitions {:>9}  contended {:>5}",
            o.name,
            o.hit_ratio * 100.0,
            o.acquisitions,
            o.contentions
        );
    }
    let clock = outcomes[0].hit_ratio;
    let q = outcomes[1].hit_ratio;
    let wrapped = outcomes[2].hit_ratio;
    println!();
    println!(
        "2Q beats CLOCK on hit ratio by {:+.2} points; the wrapped 2Q matches the",
        (q - clock) * 100.0
    );
    println!(
        "unwrapped 2Q ({:+.3} points) while acquiring the lock ~{:.0}x less often.",
        (wrapped - q) * 100.0,
        outcomes[1].acquisitions as f64 / outcomes[2].acquisitions.max(1) as f64,
    );
}
