//! The paper's TableScan scenario end-to-end through the buffer pool:
//! concurrent threads each scanning whole tables, with the pool backed
//! by a simulated disk. Compares the coarse-locked 2Q pool against the
//! BP-wrapped 2Q pool on real lock counts.
//!
//! Run with: `cargo run --release --example tablescan`

use std::sync::atomic::Ordering;
use std::sync::Arc;

use bpw_bufferpool::{BufferPool, CoarseManager, ReplacementManager, SimDisk, WrappedManager};
use bpw_core::WrapperConfig;
use bpw_replacement::TwoQ;
use bpw_workloads::{TableScan, TableScanConfig, Workload};

fn drive<M: ReplacementManager>(
    pool: &BufferPool<M>,
    workload: &TableScan,
    threads: usize,
    scans: usize,
) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let pool = &pool;
            let mut stream = workload.stream(t, 42);
            s.spawn(move || {
                let mut session = pool.session();
                let mut buf = Vec::new();
                for _ in 0..scans {
                    buf.clear();
                    stream.next_transaction(&mut buf);
                    for &page in &buf {
                        let pinned = session.fetch(page).expect("storage I/O failed");
                        // Touch the data like a scan would.
                        pinned.read(|bytes| std::hint::black_box(bytes[0]));
                    }
                }
            });
        }
    });
}

fn main() {
    // Paper dimensions: tables of 10,000 rows x 100 bytes. The buffer
    // holds the whole working set (the paper's scalability setup).
    let workload = TableScan::new(TableScanConfig::default());
    let frames = workload.page_universe() as usize;
    let threads = 4;
    let scans = 200;

    println!(
        "TableScan: {} tables x {} pages, {} threads x {} scans\n",
        workload.page_universe() / workload.pages_per_table(),
        workload.pages_per_table(),
        threads,
        scans
    );

    for wrapped in [false, true] {
        let label = if wrapped {
            "BP-wrapped 2Q (pgBatPre)"
        } else {
            "coarse-locked 2Q (pgQ)"
        };
        let (hits, misses, snap) = if wrapped {
            let pool = BufferPool::new(
                frames,
                512,
                WrappedManager::new(TwoQ::new(frames), WrapperConfig::default()),
                Arc::new(SimDisk::instant()),
            );
            drive(&pool, &workload, threads, scans);
            (
                pool.stats().hits.load(Ordering::Relaxed),
                pool.stats().misses.load(Ordering::Relaxed),
                pool.manager().lock_snapshot(),
            )
        } else {
            let pool = BufferPool::new(
                frames,
                512,
                CoarseManager::new(TwoQ::new(frames)),
                Arc::new(SimDisk::instant()),
            );
            drive(&pool, &workload, threads, scans);
            (
                pool.stats().hits.load(Ordering::Relaxed),
                pool.stats().misses.load(Ordering::Relaxed),
                pool.manager().lock_snapshot(),
            )
        };
        let total = hits + misses;
        println!("{label}");
        println!("  accesses          : {total} ({hits} hits, {misses} misses)");
        println!("  lock acquisitions : {}", snap.acquisitions);
        println!(
            "  blocked (contended): {} ({:.2}/M accesses)",
            snap.contentions,
            snap.contentions as f64 * 1e6 / total as f64
        );
        println!(
            "  accesses/acquisition: {:.1}\n",
            snap.accesses_per_acquisition()
        );
    }
    println!("Same workload, same hit ratio — batching divides the lock traffic by ~32.");
}
