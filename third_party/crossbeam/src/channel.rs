//! MPMC channels with the `crossbeam-channel` API surface this
//! workspace uses: `bounded`/`unbounded`, cloneable `Sender`/`Receiver`,
//! blocking `send`/`recv`, `try_send`/`try_recv`/`recv_timeout`, and
//! disconnect semantics (a side disconnects when its last handle drops).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Empty and all senders are gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the timeout.
    Timeout,
    /// Empty and all senders are gone.
    Disconnected,
}

/// The sending half. Cloneable; the channel disconnects when the last
/// clone drops.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half. Cloneable (MPMC); each message goes to exactly
/// one receiver.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// A channel holding at most `cap` in-flight messages; `send` blocks
/// when full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    new_channel(Some(cap))
}

/// A channel with unlimited buffering; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_channel(None)
}

fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
    shared.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T> Sender<T> {
    /// Enqueue `value`, blocking while the channel is full. Errors only
    /// when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut s = lock(&self.shared);
        loop {
            if s.receivers == 0 {
                return Err(SendError(value));
            }
            match self.shared.cap {
                Some(cap) if s.queue.len() >= cap => {
                    s = self
                        .shared
                        .not_full
                        .wait(s)
                        .unwrap_or_else(|e| e.into_inner());
                }
                _ => {
                    s.queue.push_back(value);
                    drop(s);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Enqueue without blocking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut s = lock(&self.shared);
        if s.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.shared.cap {
            if s.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        s.queue.push_back(value);
        drop(s);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.shared).queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Dequeue, blocking while the channel is empty. Errors only when
    /// empty and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut s = lock(&self.shared);
        loop {
            if let Some(v) = s.queue.pop_front() {
                drop(s);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if s.senders == 0 {
                return Err(RecvError);
            }
            s = self
                .shared
                .not_empty
                .wait(s)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeue without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut s = lock(&self.shared);
        if let Some(v) = s.queue.pop_front() {
            drop(s);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if s.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Dequeue, blocking at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut s = lock(&self.shared);
        loop {
            if let Some(v) = s.queue.pop_front() {
                drop(s);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if s.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .shared
                .not_empty
                .wait_timeout(s, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            s = guard;
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.shared).queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let last = {
            let mut s = lock(&self.shared);
            s.senders -= 1;
            s.senders == 0
        };
        if last {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let last = {
            let mut s = lock(&self.shared);
            s.receivers -= 1;
            s.receivers == 0
        };
        if last {
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn disconnect_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<u32>(1);
        let t0 = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn mpmc_distributes_all_messages() {
        let (tx, rx) = bounded(4);
        let total = 1000u64;
        let counted = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let rx = rx.clone();
                let counted = std::sync::Arc::clone(&counted);
                s.spawn(move || {
                    while rx.recv().is_ok() {
                        counted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
            for _ in 0..2 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..total / 2 {
                        tx.send(i).unwrap();
                    }
                });
            }
            drop(tx);
            drop(rx);
        });
        assert_eq!(counted.load(std::sync::atomic::Ordering::Relaxed), total);
    }

    #[test]
    fn blocking_send_wakes_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap();
    }
}
