//! Offline shim for the subset of the `crossbeam` API this workspace
//! uses: `utils::CachePadded` and `channel::{bounded, unbounded}`
//! MPMC channels. The build environment has no crates.io access, so the
//! workspace points its `crossbeam` dependency at this path crate.
//!
//! The channel is a straightforward `Mutex<VecDeque>` + two condvars —
//! not the lock-free original, but semantically identical (FIFO, MPMC,
//! disconnect on last-sender/last-receiver drop), which is what the
//! code here relies on.

pub mod channel;
pub mod utils;
