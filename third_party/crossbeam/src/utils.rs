//! `CachePadded`: align a value to (at least) a cache line so adjacent
//! instances never share one.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns `T` to 128 bytes (covers the 128-byte prefetch pair
/// on modern x86 and the 128-byte line on Apple silicon).
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value`.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_at_least_128() {
        assert!(std::mem::align_of::<CachePadded<u64>>() >= 128);
        let p = CachePadded::new(5u64);
        assert_eq!(*p, 5);
        assert_eq!(p.into_inner(), 5);
    }
}
