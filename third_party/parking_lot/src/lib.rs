//! Offline shim for the subset of the `parking_lot` API this workspace
//! uses, implemented over `std::sync`. The build environment has no
//! crates.io access, so the workspace points its `parking_lot`
//! dependency at this path crate instead.
//!
//! Differences from the real crate that matter here:
//!
//! * Poisoning is swallowed (parking_lot has none): a poisoned std lock
//!   is recovered with `into_inner`, matching parking_lot's semantics of
//!   simply continuing.
//! * `Mutex::data_ptr` returns the mutex's own address rather than the
//!   protected value's; callers only feed it to hardware prefetch hints
//!   and never dereference it, so an address in the same allocation is
//!   an adequate substitute.

use std::cell::Cell;
use std::fmt;
use std::sync::{self, TryLockError};

thread_local! {
    /// Successful lock acquisitions (mutex lock/try_lock, rwlock
    /// read/write and try_ variants, condvar re-acquire) by this
    /// thread. Because every lock in the workspace routes through this
    /// shim, the counter is a complete census of lock traffic — the
    /// "zero lock acquisitions per cache hit" tests read their own
    /// thread's delta across a window of hits. A thread-local `Cell`
    /// increment costs ~1 ns and shares no cache line, so it stays on
    /// permanently instead of hiding behind a feature that production
    /// builds would then diverge from.
    static ACQUISITIONS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn count_acquisition() {
    ACQUISITIONS.with(|c| c.set(c.get() + 1));
}

/// Total lock acquisitions performed by the calling thread since it
/// started (monotone; read twice and subtract to count a window).
pub fn thread_acquisitions() -> u64 {
    ACQUISITIONS.with(|c| c.get())
}

/// Exclusive lock, `parking_lot::Mutex`-shaped (no poisoning, guard
/// returned directly from `lock`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take the std guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        count_acquisition();
        MutexGuard { inner: Some(g) }
    }

    /// Non-blocking attempt.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => {
                count_acquisition();
                Some(MutexGuard { inner: Some(g) })
            }
            Err(TryLockError::Poisoned(e)) => {
                count_acquisition();
                Some(MutexGuard {
                    inner: Some(e.into_inner()),
                })
            }
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Address used for prefetch hints (never dereferenced by callers).
    pub fn data_ptr(&self) -> *mut T
    where
        T: Sized,
    {
        self as *const Self as *mut T
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Condition variable paired with [`Mutex`], `parking_lot`-shaped
/// (`wait` borrows the guard mutably instead of consuming it).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and sleep; re-acquires before
    /// returning. Spurious wakeups possible, as usual.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        count_acquisition(); // wait re-acquires the lock before returning
        guard.inner = Some(g);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader-writer lock, `parking_lot::RwLock`-shaped.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let g = self.inner.read().unwrap_or_else(|e| e.into_inner());
        count_acquisition();
        RwLockReadGuard { inner: g }
    }

    /// Acquire the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let g = self.inner.write().unwrap_or_else(|e| e.into_inner());
        count_acquisition();
        RwLockWriteGuard { inner: g }
    }

    /// Non-blocking read attempt.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => {
                count_acquisition();
                Some(RwLockReadGuard { inner: g })
            }
            Err(TryLockError::Poisoned(e)) => {
                count_acquisition();
                Some(RwLockReadGuard {
                    inner: e.into_inner(),
                })
            }
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Non-blocking write attempt.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => {
                count_acquisition();
                Some(RwLockWriteGuard { inner: g })
            }
            Err(TryLockError::Poisoned(e)) => {
                count_acquisition();
                Some(RwLockWriteGuard {
                    inner: e.into_inner(),
                })
            }
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquisition_counter_is_per_thread_and_complete() {
        let base = thread_acquisitions();
        let m = Mutex::new(0);
        let l = RwLock::new(0);
        drop(m.lock());
        assert!(m.try_lock().is_some());
        drop(l.read());
        drop(l.write());
        assert!(l.try_read().is_some());
        assert!(l.try_write().is_some());
        assert_eq!(thread_acquisitions() - base, 6);
        // Failed try_ attempts are not acquisitions.
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(thread_acquisitions() - base, 7);
        // Another thread's locking never shows up in ours.
        std::thread::spawn(|| {
            let m = Mutex::new(0);
            for _ in 0..100 {
                drop(m.lock());
            }
        })
        .join()
        .unwrap();
        assert_eq!(thread_acquisitions() - base, 7);
    }

    #[test]
    fn mutex_lock_try_lock() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let m = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let m2 = std::sync::Arc::clone(&m);
        let t = std::thread::spawn(move || {
            let mut g = m2.0.lock();
            while !*g {
                m2.1.wait(&mut g);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *m.0.lock() = true;
        m.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
            assert!(l.try_write().is_none());
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
