//! Offline micro-bench shim exposing the subset of the `criterion` API
//! this workspace's benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, measurement_time, warm_up_time,
//! throughput, bench_with_input, bench_function, finish}`,
//! `BenchmarkId::from_parameter`, `Throughput::Elements`, `Bencher::iter`
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: a calibration pass sizes the per-sample iteration
//! count to roughly fill `measurement_time / sample_size`, then
//! `sample_size` samples are timed and the median ns/iter is reported to
//! stdout. No statistics beyond median/min/max, no HTML reports, no
//! comparison against saved baselines — enough to eyeball relative cost,
//! which is all the workspace's benches are for in this offline image.

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id rendered from a parameter value, e.g. a batch size.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Id from a function name plus a parameter.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Time `routine`, running it enough times per sample to get a
    /// stable median.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that makes a
        // sample take roughly measurement_time / sample_size.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut calib_iters = 0u64;
        let calib_start = Instant::now();
        while Instant::now() < warm_deadline {
            std::hint::black_box(routine());
            calib_iters += 1;
        }
        let per_iter = if calib_iters == 0 {
            Duration::from_nanos(1)
        } else {
            calib_start.elapsed() / calib_iters as u32
        };
        let target_sample = self.measurement_time / self.sample_size.max(1) as u32;
        self.iters_per_sample = (target_sample.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, u64::MAX as u128) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.1} Melem/s", n as f64 / median * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:.1} MiB/s", n as f64 / median * 1e9 / (1 << 20) as f64)
            }
            None => String::new(),
        };
        println!(
            "{group}/{id}: median {median:.1} ns/iter (min {min:.1}, max {max:.1}, \
             {} samples x {} iters){rate}",
            self.samples.len(),
            self.iters_per_sample,
        );
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up/calibration budget per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Annotate subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = self.bencher();
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string(), self.throughput);
        self
    }

    /// Run a benchmark with no input parameter.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = self.bencher();
        f(&mut bencher);
        bencher.report(&self.name, id, self.throughput);
        self
    }

    /// End the group (prints nothing extra in this shim).
    pub fn finish(self) {}

    fn bencher(&self) -> Bencher {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        }
    }
}

/// Benchmark driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(500),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// Re-export for benches that import it from criterion rather than
/// `std::hint`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_a_trivial_routine() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.measurement_time(Duration::from_millis(20));
        g.warm_up_time(Duration::from_millis(5));
        g.throughput(Throughput::Elements(1));
        let mut count = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| {
                count = count.wrapping_add(x);
                count
            });
        });
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn macros_compose() {
        fn target(c: &mut Criterion) {
            let mut g = c.benchmark_group("m");
            g.sample_size(2);
            g.measurement_time(Duration::from_millis(5));
            g.warm_up_time(Duration::from_millis(1));
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.finish();
        }
        criterion_group!(benches, target);
        benches();
    }
}
