//! Offline mini property-testing shim exposing the subset of the
//! `proptest` API this workspace's tests use: the `proptest!` macro,
//! integer/float range strategies, `prop::collection::{vec, btree_set}`,
//! `prop::sample::select`, `any::<T>()`, `ProptestConfig::with_cases`,
//! and the `prop_assert*` macros.
//!
//! Semantics: each test body runs `cases` times against values drawn
//! from a deterministic per-test RNG (seeded from the test name), so
//! failures reproduce across runs. There is no shrinking — a failure
//! reports the case number and message only. That trades debugging
//! convenience for zero dependencies, which the offline build requires.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic test RNG (xoshiro256**, splitmix64-seeded).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        TestRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. The subset of proptest's `Strategy` the tests
/// rely on: an associated output type, usable via `impl Strategy<Value
/// = T>` in function signatures.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy adapter for [`Arbitrary`] types.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Size specification for collection strategies (mirrors proptest's
/// `SizeRange` so bare `1..300` literals infer as `usize`).
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi_inclusive - self.lo + 1) as u64) as usize
    }
}

/// Strategy combinators under the familiar `prop::` paths.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use std::collections::BTreeSet;

        /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `Vec` of values from `element`, length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.sample(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Strategy for `BTreeSet<S::Value>`.
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `BTreeSet` of values from `element`, targeting a size drawn
        /// from `size` (best effort when the element universe is small).
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.sample(rng);
                let mut out = BTreeSet::new();
                // Bounded attempts: duplicates may keep a tiny universe
                // below the target size, which proptest tolerates too.
                for _ in 0..target.saturating_mul(20).max(32) {
                    if out.len() >= target {
                        break;
                    }
                    out.insert(self.element.sample(rng));
                }
                out
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Strategy choosing uniformly from a fixed list.
        pub struct Select<T> {
            options: Vec<T>,
        }

        /// Uniform choice from `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn sample(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }
}

/// Failure raised by `prop_assert!`-family macros.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed case with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type of a single property case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drive one property: run `body` against `config.cases` deterministic
/// RNG streams, panicking (like a failed `assert!`) on the first error.
pub fn run_property(
    config: &ProptestConfig,
    name: &str,
    mut body: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    // Stable per-test seed: FNV-1a over the test name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    for case in 0..config.cases {
        let mut rng = TestRng::new(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(e) = body(&mut rng) {
            panic!(
                "property `{name}` failed at case {case}/{}: {e}",
                config.cases
            );
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                $crate::run_property(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), __rng);)+
                    let __out: $crate::TestCaseResult =
                        (|| -> $crate::TestCaseResult { $body ::std::result::Result::Ok(()) })();
                    __out
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strategy),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 3u64..17,
            b in 1usize..=9,
            f in 0.25f64..0.75,
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((1..=9).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u64..100, 2..20),
            s in prop::collection::btree_set(0u64..1000, 1..8),
        ) {
            prop_assert!((2..20).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn select_and_any(
            choice in prop::sample::select(vec![2u32, 4, 8]),
            flag in any::<bool>(),
            mask in any::<u32>(),
        ) {
            prop_assert!([2, 4, 8].contains(&choice));
            let _ = (flag, mask);
        }

        #[test]
        fn tuples_compose(
            pair in (0u64..10, 0usize..5),
        ) {
            prop_assert!(pair.0 < 10 && pair.1 < 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for (out, _) in [(&mut first, 0), (&mut second, 1)] {
            crate::run_property(&ProptestConfig::with_cases(5), "determinism-probe", |rng| {
                out.push(rng.next_u64());
                Ok(())
            });
        }
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        crate::run_property(&ProptestConfig::with_cases(3), "always-fails", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
