//! Offline shim for the subset of the `rand` 0.8 API this workspace
//! uses: `Rng` (`gen`, `gen_range`, `gen_bool`), `SeedableRng`
//! (`seed_from_u64`) and `rngs::StdRng`. The build environment has no
//! crates.io access, so the workspace points its `rand` dependency at
//! this path crate.
//!
//! `StdRng` here is xoshiro256** seeded through splitmix64 — a
//! different stream than upstream's ChaCha12, but the workspace only
//! relies on determinism-per-seed and statistical quality adequate for
//! workload generation, both of which xoshiro provides. `gen_range`
//! uses Lemire-style widening multiply rejection-free mapping (a tiny
//! bias at 64-bit span is irrelevant for these workloads).

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of 64-bit randomness.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construct a generator from a seed.
pub trait SeedableRng: Sized {
    /// Derive a full seed from one `u64` (splitmix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Values drawable uniformly from the generator's full output
/// (the `Standard` distribution's role in real rand).
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing trait: blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Map a random u64 uniformly onto `0..span` (`span > 0`) via widening
/// multiply.
#[inline]
fn mul_bound(r: u64, span: u64) -> u64 {
    ((r as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                self.start.wrapping_add(mul_bound(rng.next_u64(), span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(mul_bound(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// splitmix64: seed expander and stateless mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256** — the workspace's stand-in for rand's `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden point; splitmix64 of
            // any seed cannot produce it across four draws, but guard
            // anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API familiarity.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=15);
            assert!((5..=15).contains(&w));
            let x: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_bool_respects_p() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(rng.gen_range(7u64..=7), 7);
    }
}
